//! A TPMS-style content matcher.
//!
//! The Toronto Paper Matching System scores reviewer–paper affinity by
//! text similarity between the submission and the reviewer's publication
//! record. This baseline reproduces that shape: one TF-IDF document per
//! pooled reviewer (interests + publication titles + publication
//! keywords, with interests boosted), cosine-matched against the
//! manuscript's title + keywords.

use minaret_core::ManuscriptDetails;
use minaret_index::{IndexBuilder, InvertedIndex};
use minaret_ontology::normalize_label;
use minaret_scholarly::MergedCandidate;
use minaret_synth::ScholarId;

use crate::{RankedCandidate, Recommender};

/// The TPMS-style matcher over a pre-crawled reviewer pool.
#[derive(Debug)]
pub struct TpmsRecommender {
    index: InvertedIndex,
    names: Vec<String>,
    truths: Vec<Vec<ScholarId>>,
}

impl TpmsRecommender {
    /// Builds the matcher's index from a reviewer pool (see
    /// [`crate::crawl_pool`]).
    pub fn new(pool: &[MergedCandidate]) -> Self {
        let mut builder = IndexBuilder::new();
        let mut names = Vec::with_capacity(pool.len());
        let mut truths = Vec::with_capacity(pool.len());
        for cand in pool {
            let interests = cand.interests.join(" ");
            let mut pub_text = String::new();
            for p in &cand.publications {
                pub_text.push_str(&p.title);
                pub_text.push(' ');
                for k in &p.keywords {
                    pub_text.push_str(k);
                    pub_text.push(' ');
                }
            }
            builder.add_weighted_document(&[(interests.as_str(), 3), (pub_text.as_str(), 1)]);
            names.push(cand.display_name.clone());
            truths.push(cand.truths.clone());
        }
        Self {
            index: builder.build(),
            names,
            truths,
        }
    }

    /// Size of the reviewer pool.
    pub fn pool_size(&self) -> usize {
        self.names.len()
    }
}

impl Recommender for TpmsRecommender {
    fn name(&self) -> &str {
        "tpms-style"
    }

    fn recommend(&self, manuscript: &ManuscriptDetails, k: usize) -> Vec<RankedCandidate> {
        let query = format!("{} {}", manuscript.title, manuscript.keywords.join(" "));
        let author_names: Vec<String> = manuscript
            .authors
            .iter()
            .map(|a| normalize_label(&a.name))
            .collect();
        // Over-fetch so author exclusion doesn't shrink the result below k.
        let hits = self.index.search(&query, k + manuscript.authors.len() + 4);
        hits.into_iter()
            .filter(|h| !author_names.contains(&normalize_label(&self.names[h.doc])))
            .take(k)
            .map(|h| RankedCandidate {
                name: self.names[h.doc].clone(),
                score: h.score as f64,
                truths: self.truths[h.doc].clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::crawl_pool;
    use minaret_core::AuthorInput;
    use minaret_scholarly::{RegistryConfig, SimulatedSource, SourceRegistry, SourceSpec};
    use minaret_synth::{World, WorldConfig, WorldGenerator};
    use std::sync::Arc;

    fn setup() -> (Arc<World>, TpmsRecommender) {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 200,
                ..Default::default()
            })
            .generate(),
        );
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        let pool = crawl_pool(&reg, &world.ontology);
        (world, TpmsRecommender::new(&pool))
    }

    #[test]
    fn pool_is_indexed_and_searchable() {
        let (world, tpms) = setup();
        assert!(tpms.pool_size() > 50);
        let lead = world
            .scholars()
            .iter()
            .find(|s| s.interests.len() >= 2)
            .unwrap();
        let m = ManuscriptDetails {
            title: "A study".into(),
            keywords: lead
                .interests
                .iter()
                .take(3)
                .map(|&t| world.ontology.label(t).to_string())
                .collect(),
            authors: vec![AuthorInput::named("Nobody Inparticular")],
            target_venue: "J".into(),
        };
        let out = tpms.recommend(&m, 10);
        assert!(!out.is_empty());
        assert!(out.len() <= 10);
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn topically_relevant_candidates_rank_high() {
        let (world, tpms) = setup();
        let lead = world
            .scholars()
            .iter()
            .find(|s| s.interests.len() >= 2)
            .unwrap();
        let kw: Vec<String> = lead
            .interests
            .iter()
            .take(2)
            .map(|&t| world.ontology.label(t).to_string())
            .collect();
        let m = ManuscriptDetails {
            title: kw.join(" "),
            keywords: kw.clone(),
            authors: vec![AuthorInput::named("Nobody Inparticular")],
            target_venue: "J".into(),
        };
        let out = tpms.recommend(&m, 5);
        // The top hit's profile should actually mention the keywords.
        assert!(!out.is_empty());
        assert!(out[0].score > 0.1, "top score {}", out[0].score);
    }

    #[test]
    fn authors_are_excluded() {
        let (world, tpms) = setup();
        let lead = world
            .scholars()
            .iter()
            .find(|s| s.interests.len() >= 2)
            .unwrap();
        let m = ManuscriptDetails {
            title: "T".into(),
            keywords: lead
                .interests
                .iter()
                .map(|&t| world.ontology.label(t).to_string())
                .collect(),
            authors: vec![AuthorInput::named(lead.full_name())],
            target_venue: "J".into(),
        };
        for c in tpms.recommend(&m, 20) {
            assert_ne!(normalize_label(&c.name), normalize_label(&lead.full_name()));
        }
    }
}
