//! The expansion-off arm: literal keyword matching only.

use std::collections::HashMap;
use std::sync::Arc;

use minaret_core::ManuscriptDetails;
use minaret_ontology::normalize_label;
use minaret_scholarly::{merge_profiles, SourceRegistry};

use crate::{RankedCandidate, Recommender};

/// Retrieves reviewers by searching the sources for the manuscript's
/// keywords *verbatim* — no ontology, no expansion — and ranks them by
/// the fraction of keywords they registered. This is what MINARET would
/// be without §2.1's semantic expansion, and the "off" arm of the
/// expansion ablation (E4).
#[derive(Debug)]
pub struct ExactKeywordRecommender {
    registry: Arc<SourceRegistry>,
}

impl ExactKeywordRecommender {
    /// Creates the baseline over the given sources.
    pub fn new(registry: Arc<SourceRegistry>) -> Self {
        Self { registry }
    }
}

impl Recommender for ExactKeywordRecommender {
    fn name(&self) -> &str {
        "exact-keyword"
    }

    fn recommend(&self, manuscript: &ManuscriptDetails, k: usize) -> Vec<RankedCandidate> {
        let keywords: Vec<String> = manuscript
            .keywords
            .iter()
            .map(|kw| normalize_label(kw))
            .filter(|kw| !kw.is_empty())
            .collect();
        if keywords.is_empty() {
            return Vec::new();
        }
        let mut profiles = Vec::new();
        let mut matched: HashMap<(minaret_scholarly::SourceKind, String), usize> = HashMap::new();
        for kw in &keywords {
            let (found, _errors) = self.registry.search_by_interest(kw);
            for p in found {
                *matched.entry((p.source, p.key.clone())).or_insert(0) += 1;
                profiles.push(p);
            }
        }
        profiles.sort_by(|a, b| (a.source, &a.key).cmp(&(b.source, &b.key)));
        profiles.dedup_by(|a, b| a.source == b.source && a.key == b.key);
        let merged = merge_profiles(profiles);
        let author_names: Vec<String> = manuscript
            .authors
            .iter()
            .map(|a| normalize_label(&a.name))
            .collect();
        let mut out: Vec<RankedCandidate> = merged
            .into_iter()
            .filter(|m| !author_names.contains(&normalize_label(&m.display_name)))
            .map(|m| {
                let hits = m
                    .sources
                    .iter()
                    .zip(&m.keys)
                    .filter_map(|(s, key)| matched.get(&(*s, key.clone())))
                    .copied()
                    .max()
                    .unwrap_or(0);
                RankedCandidate {
                    name: m.display_name.clone(),
                    score: hits as f64 / keywords.len() as f64,
                    truths: m.truths,
                }
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_core::AuthorInput;
    use minaret_scholarly::{RegistryConfig, SimulatedSource, SourceSpec};
    use minaret_synth::{World, WorldConfig, WorldGenerator};

    fn setup() -> (Arc<World>, ExactKeywordRecommender) {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 200,
                ..Default::default()
            })
            .generate(),
        );
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        (world.clone(), ExactKeywordRecommender::new(Arc::new(reg)))
    }

    fn manuscript(world: &World) -> ManuscriptDetails {
        let lead = world
            .scholars()
            .iter()
            .find(|s| s.interests.len() >= 2)
            .unwrap();
        ManuscriptDetails {
            title: "T".into(),
            keywords: lead
                .interests
                .iter()
                .take(2)
                .map(|&t| world.ontology.label(t).to_string())
                .collect(),
            authors: vec![AuthorInput::named(lead.full_name())],
            target_venue: "J".into(),
        }
    }

    #[test]
    fn returns_scored_sorted_candidates() {
        let (world, rec) = setup();
        let m = manuscript(&world);
        let out = rec.recommend(&m, 10);
        assert!(!out.is_empty());
        assert!(out.len() <= 10);
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for c in &out {
            assert!(c.score > 0.0 && c.score <= 1.0);
        }
    }

    #[test]
    fn excludes_authors_by_name() {
        let (world, rec) = setup();
        let m = manuscript(&world);
        for c in rec.recommend(&m, 50) {
            assert_ne!(
                normalize_label(&c.name),
                normalize_label(&m.authors[0].name)
            );
        }
    }

    #[test]
    fn empty_keywords_yield_nothing() {
        let (_, rec) = setup();
        let m = ManuscriptDetails {
            title: "T".into(),
            keywords: vec!["  ".into()],
            authors: vec![AuthorInput::named("A B")],
            target_venue: "J".into(),
        };
        assert!(rec.recommend(&m, 10).is_empty());
    }
}
