//! Crawling a closed reviewer pool out of the open sources.
//!
//! TPMS-style matchers assume a reviewer database that already exists.
//! Our sources only answer queries, so the pool is built the way a crawler
//! would: issue every topic label in the ontology as one batched interest
//! fan-out and merge everything that comes back.

use minaret_ontology::Ontology;
use minaret_scholarly::{merge_profiles, MergedCandidate, SourceRegistry};

/// Crawls the registry once, building the merged candidate pool that the
/// closed-database baselines rank over.
pub fn crawl_pool(registry: &SourceRegistry, ontology: &Ontology) -> Vec<MergedCandidate> {
    let labels: Vec<String> = ontology.topics().map(|topic| topic.label.clone()).collect();
    let report = registry.search_by_interests_report(&labels);
    let mut profiles: Vec<_> = report
        .by_label
        .into_iter()
        .flat_map(|(_, hits)| hits)
        .collect();
    profiles.sort_by(|a, b| (a.source, &a.key).cmp(&(b.source, &b.key)));
    profiles.dedup_by(|a, b| a.source == b.source && a.key == b.key);
    merge_profiles(profiles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_scholarly::{RegistryConfig, SimulatedSource, SourceSpec};
    use minaret_synth::{WorldConfig, WorldGenerator};
    use std::sync::Arc;

    #[test]
    fn crawl_finds_a_substantial_pool() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 150,
                ..Default::default()
            })
            .generate(),
        );
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        let pool = crawl_pool(&reg, &world.ontology);
        // Interest search only reaches GS+Publons coverage, so not all
        // 150 — but a healthy majority.
        assert!(pool.len() > 75, "pool too small: {}", pool.len());
        // Deterministic.
        let pool2 = crawl_pool(&reg, &world.ontology);
        assert_eq!(pool.len(), pool2.len());
    }
}
