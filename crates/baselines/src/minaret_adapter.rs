//! Adapts the full MINARET framework to the [`Recommender`] trait.

use minaret_core::{ManuscriptDetails, Minaret};

use crate::{RankedCandidate, Recommender};

/// The framework under evaluation, behind the common trait.
pub struct MinaretRecommender {
    inner: Minaret,
}

impl MinaretRecommender {
    /// Wraps a configured framework instance.
    pub fn new(inner: Minaret) -> Self {
        Self { inner }
    }

    /// Access to the wrapped framework.
    pub fn inner(&self) -> &Minaret {
        &self.inner
    }
}

impl Recommender for MinaretRecommender {
    fn name(&self) -> &str {
        "minaret"
    }

    fn recommend(&self, manuscript: &ManuscriptDetails, k: usize) -> Vec<RankedCandidate> {
        match self.inner.recommend(manuscript) {
            Ok(report) => report
                .recommendations
                .into_iter()
                .take(k)
                .map(|r| RankedCandidate {
                    name: r.name,
                    score: r.total,
                    truths: r.candidate.truths,
                })
                .collect(),
            Err(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_core::{AuthorInput, EditorConfig};
    use minaret_scholarly::{RegistryConfig, SimulatedSource, SourceRegistry, SourceSpec};
    use minaret_synth::{WorldConfig, WorldGenerator};
    use std::sync::Arc;

    #[test]
    fn adapter_round_trips_the_pipeline() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 200,
                ..Default::default()
            })
            .generate(),
        );
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        let minaret = Minaret::new(
            Arc::new(reg),
            Arc::new(minaret_ontology::seed::curated_cs_ontology()),
            EditorConfig::default(),
        );
        let rec = MinaretRecommender::new(minaret);
        assert_eq!(rec.name(), "minaret");
        let lead = world
            .scholars()
            .iter()
            .find(|s| s.interests.len() >= 2)
            .unwrap();
        let m = ManuscriptDetails {
            title: "T".into(),
            keywords: lead
                .interests
                .iter()
                .take(2)
                .map(|&t| world.ontology.label(t).to_string())
                .collect(),
            authors: vec![AuthorInput::named(lead.full_name())],
            target_venue: world.venues()[0].name.clone(),
        };
        let out = rec.recommend(&m, 5);
        assert!(!out.is_empty() && out.len() <= 5);
        for w in out.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Errors become empty lists, not panics.
        let bad = ManuscriptDetails {
            title: "".into(),
            keywords: vec![],
            authors: vec![],
            target_venue: "".into(),
        };
        assert!(rec.recommend(&bad, 5).is_empty());
    }
}
