//! Baseline reviewer recommenders for the evaluation experiments.
//!
//! The paper demonstrates MINARET but never quantifies it against
//! alternatives. To make experiment E4 meaningful this crate implements
//! the natural comparison arms, all working from the *same* simulated
//! sources MINARET sees:
//!
//! * [`ExactKeywordRecommender`] — MINARET's retrieval with semantic
//!   expansion switched off: literal keyword → interest search only.
//!   This is the "expansion off" ablation arm.
//! * [`TpmsRecommender`] — a TPMS-style content matcher: a TF-IDF cosine
//!   between the manuscript text and each reviewer's publication text,
//!   over a pre-crawled reviewer pool (TPMS operates on a closed reviewer
//!   database; [`crawl_pool`] builds the equivalent).
//! * [`RandomRecommender`] — the sanity floor.
//! * [`MinaretRecommender`] — adapts the full framework to the common
//!   [`Recommender`] trait.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod exact;
mod minaret_adapter;
mod pool;
mod random;
mod tpms;

pub use exact::ExactKeywordRecommender;
pub use minaret_adapter::MinaretRecommender;
pub use pool::crawl_pool;
pub use random::RandomRecommender;
pub use tpms::TpmsRecommender;

use minaret_core::ManuscriptDetails;
use minaret_synth::ScholarId;

/// One ranked candidate from any recommender.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedCandidate {
    /// Candidate display name.
    pub name: String,
    /// Method-specific score (higher is better; scales differ between
    /// methods and must not be compared across them).
    pub score: f64,
    /// Ground-truth identities behind the candidate record
    /// (evaluation-only; see `minaret_scholarly::SourceProfile::truth`).
    pub truths: Vec<ScholarId>,
}

/// A reviewer recommender under evaluation.
pub trait Recommender {
    /// Method name for report tables.
    fn name(&self) -> &str;

    /// Returns up to `k` candidates, best first.
    fn recommend(&self, manuscript: &ManuscriptDetails, k: usize) -> Vec<RankedCandidate>;
}
