//! Serialization.

use std::fmt;

use crate::value::Value;

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, None, 0)
    }
}

impl Value {
    /// Compact serialization (what `to_string` produces via `Display`).
    pub fn to_json(&self) -> String {
        self.to_string()
    }

    /// Two-space-indented serialization for humans.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        write!(PrettyWriter(&mut out), "{}", PrettyValue(self)).expect("string write");
        out
    }
}

struct PrettyWriter<'a>(&'a mut String);
impl fmt::Write for PrettyWriter<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.push_str(s);
        Ok(())
    }
}

struct PrettyValue<'a>(&'a Value);
impl fmt::Display for PrettyValue<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self.0, Some(2), 0)
    }
}

fn write_value(
    f: &mut fmt::Formatter<'_>,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(true) => f.write_str("true"),
        Value::Bool(false) => f.write_str("false"),
        Value::Number(n) => write_number(f, *n),
        Value::String(s) => write_string(f, s),
        Value::Array(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                newline_indent(f, indent, depth + 1)?;
                write_value(f, item, indent, depth + 1)?;
            }
            newline_indent(f, indent, depth)?;
            f.write_str("]")
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{")?;
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                newline_indent(f, indent, depth + 1)?;
                write_string(f, k)?;
                f.write_str(":")?;
                if indent.is_some() {
                    f.write_str(" ")?;
                }
                write_value(f, val, indent, depth + 1)?;
            }
            newline_indent(f, indent, depth)?;
            f.write_str("}")
        }
    }
}

fn newline_indent(f: &mut fmt::Formatter<'_>, indent: Option<usize>, depth: usize) -> fmt::Result {
    if let Some(w) = indent {
        f.write_str("\n")?;
        for _ in 0..w * depth {
            f.write_str(" ")?;
        }
    }
    Ok(())
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; emit null like most encoders.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0C}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => {
                let mut buf = [0u8; 4];
                f.write_str(c.encode_utf8(&mut buf))?;
            }
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize_canonically() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::from(true).to_json(), "true");
        assert_eq!(Value::from(42u32).to_json(), "42");
        assert_eq!(Value::from(1.5).to_json(), "1.5");
        assert_eq!(Value::from("hi").to_json(), "\"hi\"");
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let s = Value::from("a\"b\\c\nd\te\u{01}");
        assert_eq!(s.to_json(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        // Unicode passes through unescaped.
        assert_eq!(Value::from("héllo").to_json(), "\"héllo\"");
    }

    #[test]
    fn containers_serialize_in_order() {
        let v = Value::object()
            .set("z", 1u32)
            .set("a", vec![1u32, 2])
            .set("nested", Value::object().set("k", "v"));
        assert_eq!(v.to_json(), r#"{"z":1,"a":[1,2],"nested":{"k":"v"}}"#);
        assert_eq!(Value::Array(vec![]).to_json(), "[]");
        assert_eq!(Value::object().to_json(), "{}");
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::object().set("a", vec![1u32]);
        let pretty = v.to_pretty_string();
        assert!(pretty.contains("{\n  \"a\": [\n    1\n  ]\n}"));
    }
}
