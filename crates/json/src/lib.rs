//! A minimal JSON codec, built from scratch.
//!
//! The MINARET prototype exposes RESTful APIs; this workspace's allowed
//! external crates include `serde` but not `serde_json`, and the JSON
//! needed by `minaret-server` is small enough to own outright — which
//! also makes it a well-contained, property-testable substrate.
//!
//! * [`Value`] — the JSON data model (objects preserve insertion order).
//! * `Value::to_string` (via `Display`) / [`Value::to_pretty_string`]
//!   — serialization with full string escaping.
//! * [`parse`] — a recursive-descent parser with a depth limit, returning
//!   positioned errors.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod parse;
mod ser;
mod value;

pub use parse::{parse, ParseError};
pub use value::Value;
