//! The JSON data model.

/// A JSON value. Objects preserve insertion order (like the documents the
/// REST API emits, so field order is stable for clients and tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 round-trip).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered list of key–value pairs. Duplicate keys
    /// are not rejected at construction; [`Value::get`] returns the first.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) a field on an object; panics if `self` is
    /// not an object — construction-time misuse, not input-dependent.
    pub fn set(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Object(fields) => {
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value.into();
                } else {
                    fields.push((key.to_string(), value.into()));
                }
                self
            }
            _ => panic!("Value::set on non-object"),
        }
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(n as f64)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_sets_and_replaces() {
        let v = Value::object().set("a", 1u32).set("b", "x").set("a", 2u32);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn accessors_are_type_safe() {
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from(1.5).as_u64(), None);
        assert_eq!(Value::from(3u64).as_u64(), Some(3));
        assert_eq!(Value::from(-1i64).as_u64(), None);
        assert!(Value::from(Option::<u32>::None).is_null());
        assert_eq!(Value::from(vec![1u32, 2]).as_array().unwrap().len(), 2);
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_non_object_panics() {
        let _ = Value::Null.set("a", 1u32);
    }
}
