//! A recursive-descent JSON parser.

use std::fmt;

use crate::value::Value;

/// Maximum nesting depth, guarding against stack exhaustion from
/// adversarial request bodies.
const MAX_DEPTH: usize = 128;

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c).ok_or_else(|| self.err("invalid UTF-8"))?;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_containers() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a[2].get("b").unwrap().is_null());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap(),
            Value::String("a\"b\\c\ndA".into())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), Value::String("héllo".into()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(parse(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "nul",
            "tru",
            "{",
            "[",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "\"\\q\"",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\ud800\"",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let e = parse(&deep).unwrap_err();
        assert!(e.message.contains("depth"));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\": nope}").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(e.to_string().contains("byte 6"));
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            (-1e9f64..1e9).prop_map(|n| Value::Number((n * 1000.0).round() / 1000.0)),
            "[a-zA-Z0-9 _\\\\\"\n\té😀]{0,12}".prop_map(Value::String),
        ];
        leaf.prop_recursive(4, 32, 6, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
                proptest::collection::vec(("[a-z]{1,6}", inner), 0..6).prop_map(|fields| {
                    // Dedup keys to keep equality well-defined.
                    let mut seen = std::collections::HashSet::new();
                    Value::Object(
                        fields
                            .into_iter()
                            .filter(|(k, _)| seen.insert(k.clone()))
                            .collect(),
                    )
                }),
            ]
        })
    }

    proptest! {
        #[test]
        fn roundtrip_compact(v in arb_value()) {
            let parsed = parse(&v.to_json()).expect("own output parses");
            prop_assert_eq!(parsed, v);
        }

        #[test]
        fn roundtrip_pretty(v in arb_value()) {
            let parsed = parse(&v.to_pretty_string()).expect("pretty output parses");
            prop_assert_eq!(parsed, v);
        }

        #[test]
        fn parser_never_panics(s in ".{0,64}") {
            let _ = parse(&s);
        }
    }
}
