//! A small inverted-index / TF-IDF retrieval substrate.
//!
//! MINARET retrieves candidate reviewers by matching expanded keywords
//! against reviewer research-interest profiles, and the TPMS-style
//! baseline matches manuscripts against reviewer publication text. Both
//! need a ranked text-retrieval primitive; this crate provides it,
//! dependency-free:
//!
//! * [`tokenize_text`] — lowercasing tokenizer with stopword removal and
//!   light plural stemming;
//! * [`IndexBuilder`] / [`InvertedIndex`] — TF-IDF weighted postings with
//!   cosine-normalized top-k search.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod search;
mod token;

pub use build::{IndexBuilder, InvertedIndex};
pub use search::SearchHit;
pub use token::{stem_lite, tokenize_text};
