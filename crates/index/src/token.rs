//! Tokenization for the retrieval substrate.

/// English stopwords common in scholarly interest phrases and titles.
/// Deliberately small — retrieval quality here comes from TF-IDF, not
/// aggressive filtering.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "by", "for", "from", "in", "into", "is", "it", "of",
    "on", "or", "that", "the", "their", "this", "to", "toward", "towards", "using", "via", "with",
];

fn is_stopword(t: &str) -> bool {
    STOPWORDS.binary_search(&t).is_ok()
}

/// Light stemming: strips common English plural/verbal suffixes without a
/// full Porter stemmer. `databases` → `database`, `queries` → `query`,
/// `indexing` stays (too short to strip safely).
pub fn stem_lite(token: &str) -> String {
    let t = token;
    // Length guards count *characters*, not bytes, so multibyte tokens
    // are never stripped below the two-character token minimum.
    let chars = t.chars().count();
    if chars > 4 && t.ends_with("ies") {
        let mut s = t[..t.len() - 3].to_string();
        s.push('y');
        return s;
    }
    if chars > 4 && (t.ends_with("sses") || t.ends_with("xes") || t.ends_with("ches")) {
        return t[..t.len() - 2].to_string();
    }
    if chars > 3 && t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") {
        return t[..t.len() - 1].to_string();
    }
    t.to_string()
}

/// Lowercases, splits on non-alphanumerics, drops stopwords and
/// single-character tokens, applies light stemming.
///
/// ```
/// use minaret_index::tokenize_text;
/// assert_eq!(
///     tokenize_text("Scalable Processing of RDF Queries"),
///     vec!["scalable", "processing", "rdf", "query"]
/// );
/// ```
pub fn tokenize_text(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                cur.push(lower);
            }
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, t: String) {
    if t.chars().count() < 2 || is_stopword(&t) {
        return;
    }
    out.push(stem_lite(&t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stopwords_table_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS);
    }

    #[test]
    fn drops_stopwords_and_short_tokens() {
        assert_eq!(tokenize_text("the state of the art"), vec!["state", "art"]);
        assert_eq!(tokenize_text("a b c"), Vec::<String>::new());
    }

    #[test]
    fn stems_plurals() {
        assert_eq!(stem_lite("databases"), "database");
        assert_eq!(stem_lite("queries"), "query");
        assert_eq!(stem_lite("systems"), "system");
        assert_eq!(stem_lite("classes"), "class"); // -sses keeps one s
        assert_eq!(stem_lite("class"), "class"); // -ss untouched
        assert_eq!(stem_lite("corpus"), "corpus"); // -us untouched
        assert_eq!(stem_lite("gas"), "gas"); // too short
    }

    #[test]
    fn handles_unicode_and_punctuation() {
        assert_eq!(
            tokenize_text("Müller-style façades!"),
            vec!["müller", "style", "façade"]
        );
    }

    proptest! {
        #[test]
        fn tokens_never_contain_separators(s in ".{0,80}") {
            for t in tokenize_text(&s) {
                prop_assert!(t.chars().all(char::is_alphanumeric));
                prop_assert!(t.chars().count() >= 2);
            }
        }

        #[test]
        fn tokenization_is_deterministic(s in ".{0,80}") {
            prop_assert_eq!(tokenize_text(&s), tokenize_text(&s));
        }
    }
}
