//! Top-k cosine search over the index.

use std::collections::HashMap;

use crate::build::InvertedIndex;
use crate::token::tokenize_text;

/// One search result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Document id as assigned by the builder.
    pub doc: usize,
    /// Cosine similarity between query and document tf-idf vectors,
    /// in `[0, 1]` (up to floating-point rounding).
    pub score: f32,
}

impl InvertedIndex {
    /// Returns up to `k` documents most similar to `query`, best first.
    /// Ties are broken by ascending document id for determinism.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        if k == 0 || self.n_docs == 0 {
            return Vec::new();
        }
        // Query vector under the same weighting as documents.
        let mut q_counts: HashMap<&str, f32> = HashMap::new();
        let toks = tokenize_text(query);
        for t in &toks {
            *q_counts.entry(t.as_str()).or_insert(0.0) += 1.0;
        }
        let mut q_weights: Vec<(&str, f32)> = Vec::with_capacity(q_counts.len());
        let mut q_norm = 0.0f32;
        for (term, tf) in q_counts {
            let Some(&idf) = self.idf.get(term) else {
                continue;
            };
            let w = (1.0 + tf.ln()) * idf;
            q_norm += w * w;
            q_weights.push((term, w));
        }
        if q_weights.is_empty() {
            return Vec::new();
        }
        let q_norm = q_norm.sqrt();
        let mut scores: HashMap<u32, f32> = HashMap::new();
        for (term, qw) in q_weights {
            let idf = self.idf[term];
            for &(doc, tf) in &self.postings[term] {
                let dw = (1.0 + tf.ln()) * idf;
                *scores.entry(doc).or_insert(0.0) += qw * dw;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .filter_map(|(doc, dot)| {
                let dn = self.norms[doc as usize];
                if dn <= 0.0 {
                    return None;
                }
                Some(SearchHit {
                    doc: doc as usize,
                    score: dot / (dn * q_norm),
                })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use proptest::prelude::*;

    fn corpus() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_document("semantic web and linked data with RDF and SPARQL");
        b.add_document("deep learning for image classification");
        b.add_document("query optimization in relational databases");
        b.add_document("RDF stores and SPARQL query processing");
        b.add_document("reinforcement learning agents");
        b.build()
    }

    #[test]
    fn exact_topic_match_ranks_first() {
        let idx = corpus();
        let hits = idx.search("RDF SPARQL", 3);
        assert!(!hits.is_empty());
        assert!(hits[0].doc == 0 || hits[0].doc == 3);
        // Both RDF docs come before unrelated ones.
        let rdf_positions: Vec<usize> = hits
            .iter()
            .enumerate()
            .filter(|(_, h)| h.doc == 0 || h.doc == 3)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rdf_positions, vec![0, 1]);
    }

    #[test]
    fn identical_document_scores_near_one() {
        let idx = corpus();
        let hits = idx.search("reinforcement learning agents", 1);
        assert_eq!(hits[0].doc, 4);
        assert!(hits[0].score > 0.99, "score {}", hits[0].score);
    }

    #[test]
    fn unknown_terms_yield_nothing() {
        let idx = corpus();
        assert!(idx.search("quantum gravity", 5).is_empty());
        assert!(idx.search("", 5).is_empty());
    }

    #[test]
    fn k_zero_and_empty_index() {
        let idx = corpus();
        assert!(idx.search("rdf", 0).is_empty());
        let empty = IndexBuilder::new().build();
        assert!(empty.search("rdf", 5).is_empty());
    }

    #[test]
    fn scores_sorted_descending() {
        let idx = corpus();
        let hits = idx.search("query learning", 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    proptest! {
        #[test]
        fn search_respects_k_and_bounds(q in "[a-z ]{0,40}", k in 0usize..8) {
            let idx = corpus();
            let hits = idx.search(&q, k);
            prop_assert!(hits.len() <= k);
            for h in &hits {
                prop_assert!(h.doc < idx.len());
                prop_assert!(h.score > 0.0);
                prop_assert!(h.score <= 1.0 + 1e-4);
            }
            // No duplicate docs.
            let mut docs: Vec<_> = hits.iter().map(|h| h.doc).collect();
            docs.sort_unstable();
            docs.dedup();
            prop_assert_eq!(docs.len(), hits.len());
        }
    }
}
