//! Index construction and the immutable index.

use std::collections::HashMap;

use crate::token::tokenize_text;

/// Accumulates documents, then freezes into an [`InvertedIndex`].
#[derive(Debug, Default)]
pub struct IndexBuilder {
    docs: Vec<HashMap<String, u32>>,
}

impl IndexBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a document from raw text; returns its dense document id
    /// (assigned contiguously from 0).
    pub fn add_document(&mut self, text: &str) -> usize {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for t in tokenize_text(text) {
            *counts.entry(t).or_insert(0) += 1;
        }
        self.docs.push(counts);
        self.docs.len() - 1
    }

    /// Adds a document from several text fields, each with a repetition
    /// weight (a term in a 3× field counts as appearing three times —
    /// the classic cheap field boost).
    pub fn add_weighted_document(&mut self, fields: &[(&str, u32)]) -> usize {
        let mut counts: HashMap<String, u32> = HashMap::new();
        for (text, weight) in fields {
            for t in tokenize_text(text) {
                *counts.entry(t).or_insert(0) += *weight.max(&1);
            }
        }
        self.docs.push(counts);
        self.docs.len() - 1
    }

    /// Freezes into an immutable searchable index.
    pub fn build(self) -> InvertedIndex {
        let n_docs = self.docs.len();
        let mut postings: HashMap<String, Vec<(u32, f32)>> = HashMap::new();
        for (doc, counts) in self.docs.iter().enumerate() {
            for (term, &tf) in counts {
                postings
                    .entry(term.clone())
                    .or_default()
                    .push((doc as u32, tf as f32));
            }
        }
        // idf = ln(1 + N/df); tf weight = 1 + ln(tf).
        let mut idf: HashMap<String, f32> = HashMap::with_capacity(postings.len());
        for (term, plist) in &postings {
            idf.insert(
                term.clone(),
                (1.0 + n_docs as f32 / plist.len() as f32).ln(),
            );
        }
        // Precompute document vector norms under the tf-idf weighting.
        let mut norms = vec![0.0f32; n_docs];
        for (term, plist) in &postings {
            let w_idf = idf[term];
            for &(doc, tf) in plist {
                let w = (1.0 + tf.ln()) * w_idf;
                norms[doc as usize] += w * w;
            }
        }
        for n in &mut norms {
            *n = n.sqrt();
        }
        for plist in postings.values_mut() {
            plist.sort_unstable_by_key(|&(doc, _)| doc);
        }
        InvertedIndex {
            postings,
            idf,
            norms,
            n_docs,
        }
    }
}

/// An immutable TF-IDF index with cosine-normalized search.
#[derive(Debug)]
pub struct InvertedIndex {
    pub(crate) postings: HashMap<String, Vec<(u32, f32)>>,
    pub(crate) idf: HashMap<String, f32>,
    pub(crate) norms: Vec<f32>,
    pub(crate) n_docs: usize,
}

impl InvertedIndex {
    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.n_docs
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Document frequency of a term (after tokenization/stemming of the
    /// raw term string).
    pub fn document_frequency(&self, term: &str) -> usize {
        let toks = tokenize_text(term);
        match toks.as_slice() {
            [t] => self.postings.get(t).map(Vec::len).unwrap_or(0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_contiguous_ids() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add_document("alpha beta"), 0);
        assert_eq!(b.add_document("gamma"), 1);
        let idx = b.build();
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }

    #[test]
    fn document_frequency_counts_docs_not_occurrences() {
        let mut b = IndexBuilder::new();
        b.add_document("rdf rdf rdf");
        b.add_document("rdf sparql");
        b.add_document("unrelated");
        let idx = b.build();
        assert_eq!(idx.document_frequency("rdf"), 2);
        assert_eq!(idx.document_frequency("sparql"), 1);
        assert_eq!(idx.document_frequency("missing"), 0);
        assert_eq!(idx.document_frequency("rdf sparql"), 0); // multi-token
    }

    #[test]
    fn weighted_fields_boost_terms() {
        let mut b = IndexBuilder::new();
        b.add_weighted_document(&[("databases", 3), ("networks", 1)]);
        let idx = b.build();
        let db = idx.postings.get("database").unwrap();
        let nw = idx.postings.get("network").unwrap();
        assert!(db[0].1 > nw[0].1);
    }

    #[test]
    fn empty_index_is_consistent() {
        let idx = IndexBuilder::new().build();
        assert!(idx.is_empty());
        assert_eq!(idx.vocabulary_size(), 0);
    }

    #[test]
    fn norms_are_positive_for_nonempty_docs() {
        let mut b = IndexBuilder::new();
        b.add_document("semantic web technologies");
        b.add_document(""); // empty doc
        let idx = b.build();
        assert!(idx.norms[0] > 0.0);
        assert_eq!(idx.norms[1], 0.0);
    }
}
