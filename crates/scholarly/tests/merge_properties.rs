//! Property-based tests for profile merging: the merge must behave like
//! a set union keyed by identity, whatever the sources return.

use minaret_scholarly::{
    merge_profiles, SourceKind, SourceMetrics, SourceProfile, SourcePublication,
};
use minaret_synth::ScholarId;
use proptest::prelude::*;
use std::sync::Arc;

fn arcs(ps: Vec<SourceProfile>) -> Vec<Arc<SourceProfile>> {
    ps.into_iter().map(Arc::new).collect()
}

fn arb_kind() -> impl Strategy<Value = SourceKind> {
    proptest::sample::select(SourceKind::ALL.to_vec())
}

fn arb_profile() -> impl Strategy<Value = SourceProfile> {
    (
        arb_kind(),
        0u32..6, // person pool
        proptest::sample::select(vec!["Lei Zhou", "L. Zhou", "Wei Wang", "Ada Lovelace"]),
        proptest::option::of(proptest::sample::select(vec!["U Tartu", "U Lisbon"])),
        proptest::collection::vec("[a-z]{3,8}", 0..4), // interests
        0usize..4,                                     // publication count
        proptest::option::of(0u64..10_000),            // citations
    )
        .prop_map(
            |(source, person, name, aff, interests, pubs, citations)| SourceProfile {
                source,
                key: format!("{}:{person}", source.prefix()),
                display_name: name.to_string(),
                affiliation: aff.map(str::to_string),
                country: None,
                affiliation_history: vec![],
                interests,
                publications: (0..pubs)
                    .map(|i| {
                        Arc::new(SourcePublication {
                            title: format!("paper {i} by person {person}"),
                            year: 2010 + i as u32,
                            venue_name: "J".into(),
                            coauthor_names: vec![],
                            keywords: vec![],
                            citations: None,
                        })
                    })
                    .collect(),
                metrics: SourceMetrics {
                    citations,
                    h_index: None,
                    i10_index: None,
                },
                reviews: vec![],
                truth: ScholarId(person),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn merge_is_permutation_invariant(mut profiles in proptest::collection::vec(arb_profile(), 0..12), rotate in 0usize..12) {
        let a = merge_profiles(arcs(profiles.clone()));
        let len = profiles.len();
        if len > 0 {
            profiles.rotate_left(rotate % len);
        }
        let b = merge_profiles(arcs(profiles));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn merge_is_idempotent_on_duplicated_input(profiles in proptest::collection::vec(arb_profile(), 0..8)) {
        let once = merge_profiles(arcs(profiles.clone()));
        let mut doubled = profiles.clone();
        doubled.extend(profiles);
        let twice = merge_profiles(arcs(doubled));
        // Duplicating inputs may duplicate keys inside a candidate but
        // must not change the number of candidates or their identities.
        prop_assert_eq!(once.len(), twice.len());
        let names_a: Vec<_> = once.iter().map(|c| c.display_name.clone()).collect();
        let names_b: Vec<_> = twice.iter().map(|c| c.display_name.clone()).collect();
        prop_assert_eq!(names_a, names_b);
    }

    #[test]
    fn every_input_profile_lands_in_exactly_one_candidate(mut profiles in proptest::collection::vec(arb_profile(), 0..12)) {
        // The merge contract assumes per-source keys are unique (the
        // pipeline dedups by (source, key) before merging); make the
        // generated keys unique so the accounting below is well-defined.
        for (i, p) in profiles.iter_mut().enumerate() {
            p.key = format!("{}#{i}", p.key);
        }
        let merged = merge_profiles(arcs(profiles.clone()));
        let total_keys: usize = merged.iter().map(|c| c.keys.len()).sum();
        prop_assert_eq!(total_keys, profiles.len());
        // Metrics are maxima over contributing profiles, so never less
        // than any input's.
        for cand in &merged {
            for p in &profiles {
                if cand.keys.contains(&p.key) && cand.sources.contains(&p.source) {
                    if let (Some(cm), Some(pm)) = (cand.metrics.citations, p.metrics.citations) {
                        prop_assert!(cm >= pm);
                    }
                }
            }
        }
    }

    #[test]
    fn merged_interests_are_normalized_and_sorted(profiles in proptest::collection::vec(arb_profile(), 0..10)) {
        for cand in merge_profiles(arcs(profiles)) {
            let mut sorted = cand.interests.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(&sorted, &cand.interests);
            for i in &cand.interests {
                prop_assert_eq!(i.clone(), minaret_ontology::normalize_label(i));
            }
        }
    }
}
