//! Errors returned by scholarly sources.

use std::fmt;

use crate::spec::SourceKind;

/// Errors a (simulated) scholarly source can return.
///
/// These mirror the failure modes of real web scraping: transient network
/// failures, rate limiting, missing pages, and queries a source simply
/// does not support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A transient failure (timeout, connection reset). Retriable.
    Transient {
        /// Which source failed.
        source: SourceKind,
    },
    /// The source rate-limited the caller. Retriable after a pause.
    RateLimited {
        /// Which source rate-limited.
        source: SourceKind,
    },
    /// The requested profile does not exist on this source.
    NotFound {
        /// Which source was asked.
        source: SourceKind,
        /// The key that was requested.
        key: String,
    },
    /// The source does not support this kind of query (e.g. DBLP has no
    /// interest-based search).
    Unsupported {
        /// Which source was asked.
        source: SourceKind,
        /// Human-readable description of the unsupported operation.
        operation: &'static str,
    },
    /// The call exceeded its per-call deadline (the response, if any,
    /// arrived too late to use). Retriable — slowness is often
    /// transient — but each retry is bounded by the fan-out budget.
    DeadlineExceeded {
        /// Which source was too slow.
        source: SourceKind,
    },
    /// The fan-out budget ran out before this source's retries did; the
    /// remaining attempts were abandoned. Not retriable within the same
    /// fan-out.
    BudgetExhausted {
        /// Which source was cut off.
        source: SourceKind,
    },
    /// The source's circuit breaker is open: it failed repeatedly and is
    /// being rested instead of hammered. Not retriable within the same
    /// fan-out (the breaker admits probes again after its cooldown).
    CircuitOpen {
        /// Which source is short-circuited.
        source: SourceKind,
    },
    /// The source implementation itself failed (e.g. its worker thread
    /// panicked). Not retriable.
    Internal {
        /// Which source misbehaved.
        source: SourceKind,
        /// What happened, for the log line.
        detail: String,
    },
}

impl SourceError {
    /// True when retrying the same request may succeed.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            SourceError::Transient { .. }
                | SourceError::RateLimited { .. }
                | SourceError::DeadlineExceeded { .. }
        )
    }

    /// True when the error indicates the *service* is unhealthy (feeds
    /// the circuit breaker), as opposed to an orderly "no such profile"
    /// or "operation unsupported" answer from a healthy service.
    pub fn is_service_fault(&self) -> bool {
        matches!(
            self,
            SourceError::Transient { .. }
                | SourceError::RateLimited { .. }
                | SourceError::DeadlineExceeded { .. }
                | SourceError::Internal { .. }
        )
    }

    /// The source that produced the error.
    pub fn source(&self) -> SourceKind {
        match self {
            SourceError::Transient { source }
            | SourceError::RateLimited { source }
            | SourceError::NotFound { source, .. }
            | SourceError::Unsupported { source, .. }
            | SourceError::DeadlineExceeded { source }
            | SourceError::BudgetExhausted { source }
            | SourceError::CircuitOpen { source }
            | SourceError::Internal { source, .. } => *source,
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient { source } => write!(f, "{source}: transient failure"),
            SourceError::RateLimited { source } => write!(f, "{source}: rate limited"),
            SourceError::NotFound { source, key } => {
                write!(f, "{source}: profile {key:?} not found")
            }
            SourceError::Unsupported { source, operation } => {
                write!(f, "{source}: unsupported operation: {operation}")
            }
            SourceError::DeadlineExceeded { source } => {
                write!(f, "{source}: call deadline exceeded")
            }
            SourceError::BudgetExhausted { source } => {
                write!(
                    f,
                    "{source}: fan-out budget exhausted before retries completed"
                )
            }
            SourceError::CircuitOpen { source } => {
                write!(f, "{source}: circuit breaker open (source resting)")
            }
            SourceError::Internal { source, detail } => {
                write!(f, "{source}: internal source failure: {detail}")
            }
        }
    }
}

impl std::error::Error for SourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retriability_classification() {
        assert!(SourceError::Transient {
            source: SourceKind::Dblp
        }
        .is_retriable());
        assert!(SourceError::RateLimited {
            source: SourceKind::GoogleScholar
        }
        .is_retriable());
        assert!(!SourceError::NotFound {
            source: SourceKind::Publons,
            key: "x".into()
        }
        .is_retriable());
        assert!(!SourceError::Unsupported {
            source: SourceKind::Dblp,
            operation: "interest search"
        }
        .is_retriable());
        assert!(SourceError::DeadlineExceeded {
            source: SourceKind::AcmDl
        }
        .is_retriable());
        assert!(!SourceError::BudgetExhausted {
            source: SourceKind::AcmDl
        }
        .is_retriable());
        assert!(!SourceError::CircuitOpen {
            source: SourceKind::Orcid
        }
        .is_retriable());
        assert!(!SourceError::Internal {
            source: SourceKind::Orcid,
            detail: "panicked".into()
        }
        .is_retriable());
    }

    #[test]
    fn service_fault_classification_feeds_the_breaker() {
        // Service faults: the breaker should count these.
        for e in [
            SourceError::Transient {
                source: SourceKind::Dblp,
            },
            SourceError::RateLimited {
                source: SourceKind::Dblp,
            },
            SourceError::DeadlineExceeded {
                source: SourceKind::Dblp,
            },
            SourceError::Internal {
                source: SourceKind::Dblp,
                detail: "x".into(),
            },
        ] {
            assert!(e.is_service_fault(), "{e}");
        }
        // Healthy-service answers: the breaker must NOT count these.
        for e in [
            SourceError::NotFound {
                source: SourceKind::Dblp,
                key: "k".into(),
            },
            SourceError::Unsupported {
                source: SourceKind::Dblp,
                operation: "op",
            },
            SourceError::CircuitOpen {
                source: SourceKind::Dblp,
            },
            SourceError::BudgetExhausted {
                source: SourceKind::Dblp,
            },
        ] {
            assert!(!e.is_service_fault(), "{e}");
        }
    }

    #[test]
    fn display_includes_source() {
        let e = SourceError::NotFound {
            source: SourceKind::Orcid,
            key: "orcid:77".into(),
        };
        assert!(e.to_string().contains("ORCID"));
        assert_eq!(e.source(), SourceKind::Orcid);
    }
}
