//! Errors returned by scholarly sources.

use std::fmt;

use crate::spec::SourceKind;

/// Errors a (simulated) scholarly source can return.
///
/// These mirror the failure modes of real web scraping: transient network
/// failures, rate limiting, missing pages, and queries a source simply
/// does not support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// A transient failure (timeout, connection reset). Retriable.
    Transient {
        /// Which source failed.
        source: SourceKind,
    },
    /// The source rate-limited the caller. Retriable after a pause.
    RateLimited {
        /// Which source rate-limited.
        source: SourceKind,
    },
    /// The requested profile does not exist on this source.
    NotFound {
        /// Which source was asked.
        source: SourceKind,
        /// The key that was requested.
        key: String,
    },
    /// The source does not support this kind of query (e.g. DBLP has no
    /// interest-based search).
    Unsupported {
        /// Which source was asked.
        source: SourceKind,
        /// Human-readable description of the unsupported operation.
        operation: &'static str,
    },
}

impl SourceError {
    /// True when retrying the same request may succeed.
    pub fn is_retriable(&self) -> bool {
        matches!(
            self,
            SourceError::Transient { .. } | SourceError::RateLimited { .. }
        )
    }

    /// The source that produced the error.
    pub fn source(&self) -> SourceKind {
        match self {
            SourceError::Transient { source }
            | SourceError::RateLimited { source }
            | SourceError::NotFound { source, .. }
            | SourceError::Unsupported { source, .. } => *source,
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Transient { source } => write!(f, "{source}: transient failure"),
            SourceError::RateLimited { source } => write!(f, "{source}: rate limited"),
            SourceError::NotFound { source, key } => {
                write!(f, "{source}: profile {key:?} not found")
            }
            SourceError::Unsupported { source, operation } => {
                write!(f, "{source}: unsupported operation: {operation}")
            }
        }
    }
}

impl std::error::Error for SourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retriability_classification() {
        assert!(SourceError::Transient {
            source: SourceKind::Dblp
        }
        .is_retriable());
        assert!(SourceError::RateLimited {
            source: SourceKind::GoogleScholar
        }
        .is_retriable());
        assert!(!SourceError::NotFound {
            source: SourceKind::Publons,
            key: "x".into()
        }
        .is_retriable());
        assert!(!SourceError::Unsupported {
            source: SourceKind::Dblp,
            operation: "interest search"
        }
        .is_retriable());
    }

    #[test]
    fn display_includes_source() {
        let e = SourceError::NotFound {
            source: SourceKind::Orcid,
            key: "orcid:77".into(),
        };
        assert!(e.to_string().contains("ORCID"));
        assert_eq!(e.source(), SourceKind::Orcid);
    }
}
