//! Merging per-source profiles into candidate records.
//!
//! One person yields up to six profiles, each partial and differently
//! keyed. A scraper has no shared identifier, so profiles are merged by
//! *(normalized display name, affiliation)* — which means name collisions
//! can wrongly merge two people, exactly the failure mode §2.1's identity
//! verification exists to catch. The evaluation harness measures how often
//! that happens using the profiles' ground-truth labels.

use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

use minaret_synth::ScholarId;
use parking_lot::RwLock;

use crate::intern;
use crate::record::{AffiliationRecord, SourceMetrics, SourceProfile, SourceReview};
use crate::spec::SourceKind;

/// A candidate reviewer assembled from one or more source profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCandidate {
    /// The best (longest) display name observed.
    pub display_name: String,
    /// Current affiliation, if any source provided one.
    pub affiliation: Option<String>,
    /// Country of the current affiliation, if known.
    pub country: Option<String>,
    /// Union of affiliation histories (ORCID usually the sole
    /// contributor).
    pub affiliation_history: Vec<AffiliationRecord>,
    /// Union of research interests across sources (normalized, deduped).
    pub interests: Vec<String>,
    /// Union of publications, deduplicated by normalized title.
    /// `Arc`-shared with the source profiles that contributed them.
    pub publications: Vec<Arc<crate::record::SourcePublication>>,
    /// Best available metrics (max across sources, since every source
    /// under-counts relative to the truth).
    pub metrics: SourceMetrics,
    /// Union of review records, `Arc`-shared like `publications`.
    pub reviews: Vec<Arc<SourceReview>>,
    /// Which sources contributed.
    pub sources: Vec<SourceKind>,
    /// Per-source profile keys that were merged.
    pub keys: Vec<String>,
    /// Ground-truth identities observed among merged profiles.
    ///
    /// **Evaluation-only** (never read by the framework). More than one
    /// entry means the name-based merge conflated distinct people.
    pub truths: Vec<ScholarId>,
}

impl MergedCandidate {
    /// True when the merge conflated profiles of different real people.
    pub fn is_conflated(&self) -> bool {
        self.truths.len() > 1
    }

    /// The majority ground-truth identity (evaluation-only), i.e. the
    /// person most of the merged profiles belong to.
    pub fn dominant_truth(&self) -> Option<ScholarId> {
        self.truths.first().copied()
    }
}

/// Pointer-keyed memo for [`merge_key`]: interned `(name, affiliation)`
/// pairs map to their interned composite key. The global interner never
/// frees, so interned `Arc<str>` data addresses are stable and unique
/// per content — a `(usize, usize)` address pair identifies the inputs
/// without hashing their bytes, and a warm merge allocates nothing.
type MergeKeyMemo = HashMap<(usize, usize), Arc<str>>;
static MERGE_KEYS: OnceLock<RwLock<MergeKeyMemo>> = OnceLock::new();

fn merge_key(p: &SourceProfile) -> Arc<str> {
    // Family-name + first initial + affiliation: abbreviated display
    // names ("L. Zhou") must land in the same bucket as "Lei Zhou" at the
    // same institution, while "Lei Zhou" at another university stays
    // separate (until country-level checks catch it later).
    let name = intern::normalized(&p.display_name);
    let aff = match p.affiliation.as_deref() {
        Some(a) => intern::normalized(a),
        None => intern::intern(""),
    };
    let memo = MERGE_KEYS.get_or_init(|| RwLock::new(HashMap::new()));
    let addr = (
        name.as_ref().as_ptr() as usize,
        aff.as_ref().as_ptr() as usize,
    );
    if let Some(hit) = memo.read().get(&addr) {
        return hit.clone();
    }
    let mut parts: Vec<&str> = name.split(' ').filter(|s| !s.is_empty()).collect();
    let family = parts.pop().unwrap_or("");
    let initial = parts.first().and_then(|s| s.chars().next()).unwrap_or('?');
    let key = intern::intern(&format!("{initial}|{family}|{aff}"));
    memo.write().entry(addr).or_insert_with(|| key.clone());
    key
}

/// Merges source profiles into candidates keyed by
/// (name-initial, family name, affiliation). Input profiles are
/// `Arc`-shared (the shape every source hands out), so bucketing moves
/// pointers; the per-profile cost of a merge is two memoized interner
/// lookups, not a rebuilt key string.
pub fn merge_profiles(profiles: Vec<Arc<SourceProfile>>) -> Vec<MergedCandidate> {
    let mut buckets: HashMap<Arc<str>, Vec<Arc<SourceProfile>>> = HashMap::new();
    for p in profiles {
        buckets.entry(merge_key(&p)).or_default().push(p);
    }
    let mut out: Vec<MergedCandidate> = buckets.into_values().map(merge_bucket).collect();
    // Deterministic order for downstream phases regardless of input
    // permutation. (display_name, keys) almost always suffices, but two
    // candidates *can* tie on both — e.g. duplicate per-source keys with
    // conflicting affiliations from a misbehaving source — so fall back
    // to a total structural order via the Debug rendering.
    out.sort_by_cached_key(|c| {
        (
            c.display_name.clone(),
            c.keys.clone(),
            c.affiliation.clone(),
            format!("{c:?}"),
        )
    });
    out
}

fn merge_bucket(mut profiles: Vec<Arc<SourceProfile>>) -> MergedCandidate {
    profiles.sort_by(|a, b| a.source.cmp(&b.source).then(a.key.cmp(&b.key)));
    let display_name = profiles
        .iter()
        .map(|p| p.display_name.clone())
        .max_by_key(|n| n.len())
        .unwrap_or_default();
    let affiliation = profiles.iter().find_map(|p| p.affiliation.clone());
    let country = profiles.iter().find_map(|p| p.country.clone());

    let mut affiliation_history = Vec::new();
    for p in &profiles {
        for a in &p.affiliation_history {
            if !affiliation_history.contains(a) {
                affiliation_history.push(a.clone());
            }
        }
    }

    // Memoized normalization: these loops revisit the same interest and
    // title strings on every merge of every recommendation, so the warm
    // path is interner hits, not fresh normalize allocations.
    let mut interests: BTreeSet<Arc<str>> = BTreeSet::new();
    for p in &profiles {
        for i in &p.interests {
            interests.insert(intern::normalized(i));
        }
    }

    let mut publications = Vec::new();
    let mut seen_titles: BTreeSet<Arc<str>> = BTreeSet::new();
    for p in &profiles {
        for publ in &p.publications {
            if seen_titles.insert(intern::normalized(&publ.title)) {
                publications.push(publ.clone());
            }
        }
    }

    let metrics = SourceMetrics {
        citations: profiles.iter().filter_map(|p| p.metrics.citations).max(),
        h_index: profiles.iter().filter_map(|p| p.metrics.h_index).max(),
        i10_index: profiles.iter().filter_map(|p| p.metrics.i10_index).max(),
    };

    let mut reviews = Vec::new();
    for p in &profiles {
        for r in &p.reviews {
            if !reviews.contains(r) {
                reviews.push(r.clone());
            }
        }
    }

    let mut sources: Vec<SourceKind> = profiles.iter().map(|p| p.source).collect();
    sources.dedup();
    let keys = profiles.iter().map(|p| p.key.clone()).collect();

    // Truth labels ordered by frequency (majority first), then id.
    let mut counts: HashMap<ScholarId, usize> = HashMap::new();
    for p in &profiles {
        *counts.entry(p.truth).or_insert(0) += 1;
    }
    let mut truths: Vec<(ScholarId, usize)> = counts.into_iter().collect();
    truths.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let truths = truths.into_iter().map(|(id, _)| id).collect();

    MergedCandidate {
        display_name,
        affiliation,
        country,
        affiliation_history,
        interests: interests.iter().map(|i| i.to_string()).collect(),
        publications,
        metrics,
        reviews,
        sources,
        keys,
        truths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SourcePublication;

    fn arcs(ps: Vec<SourceProfile>) -> Vec<Arc<SourceProfile>> {
        ps.into_iter().map(Arc::new).collect()
    }

    fn profile(source: SourceKind, name: &str, aff: &str, truth: u32) -> SourceProfile {
        SourceProfile {
            source,
            key: format!("{}:{truth}", source.prefix()),
            display_name: name.to_string(),
            affiliation: Some(aff.to_string()),
            country: Some("Estonia".into()),
            affiliation_history: vec![],
            interests: vec![],
            publications: vec![],
            metrics: SourceMetrics::default(),
            reviews: vec![],
            truth: ScholarId(truth),
        }
    }

    #[test]
    fn same_person_across_sources_merges() {
        let a = profile(
            SourceKind::GoogleScholar,
            "Lei Zhou",
            "University of Tartu",
            1,
        );
        let b = profile(SourceKind::Dblp, "Lei Zhou", "University of Tartu", 1);
        let merged = merge_profiles(arcs(vec![a, b]));
        assert_eq!(merged.len(), 1);
        assert_eq!(
            merged[0].sources,
            vec![SourceKind::GoogleScholar, SourceKind::Dblp]
        );
        assert!(!merged[0].is_conflated());
        assert_eq!(merged[0].dominant_truth(), Some(ScholarId(1)));
    }

    #[test]
    fn abbreviated_names_merge_with_full_names() {
        let a = profile(
            SourceKind::GoogleScholar,
            "Lei Zhou",
            "University of Tartu",
            1,
        );
        let b = profile(SourceKind::AcmDl, "L. Zhou", "University of Tartu", 1);
        let merged = merge_profiles(arcs(vec![a, b]));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].display_name, "Lei Zhou"); // longest wins
    }

    #[test]
    fn same_name_different_affiliation_stays_separate() {
        let a = profile(
            SourceKind::GoogleScholar,
            "Lei Zhou",
            "University of Tartu",
            1,
        );
        let b = profile(
            SourceKind::GoogleScholar,
            "Lei Zhou",
            "University of Beijing",
            2,
        );
        let merged = merge_profiles(arcs(vec![a, b]));
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn collisions_at_same_affiliation_conflate_and_are_detectable() {
        let a = profile(
            SourceKind::GoogleScholar,
            "Lei Zhou",
            "University of Tartu",
            1,
        );
        let b = profile(SourceKind::Dblp, "Lei Zhou", "University of Tartu", 2);
        let merged = merge_profiles(arcs(vec![a, b]));
        assert_eq!(merged.len(), 1);
        assert!(merged[0].is_conflated());
        assert_eq!(merged[0].truths.len(), 2);
    }

    #[test]
    fn publications_dedupe_by_title_and_metrics_take_max() {
        let mut a = profile(SourceKind::GoogleScholar, "A B", "U", 1);
        a.publications.push(Arc::new(SourcePublication {
            title: "Shared Result".into(),
            year: 2015,
            venue_name: "J".into(),
            coauthor_names: vec![],
            keywords: vec![],
            citations: Some(5),
        }));
        a.metrics.citations = Some(100);
        a.metrics.h_index = Some(5);
        let mut b = profile(SourceKind::AcmDl, "A B", "U", 1);
        b.publications.push(Arc::new(SourcePublication {
            title: "shared   result".into(), // same title, different text
            year: 2015,
            venue_name: "J".into(),
            coauthor_names: vec![],
            keywords: vec![],
            citations: Some(3),
        }));
        b.publications.push(Arc::new(SourcePublication {
            title: "Unique Result".into(),
            year: 2016,
            venue_name: "J".into(),
            coauthor_names: vec![],
            keywords: vec![],
            citations: None,
        }));
        b.metrics.citations = Some(80);
        b.metrics.h_index = Some(7);
        let merged = merge_profiles(arcs(vec![a, b]));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].publications.len(), 2);
        assert_eq!(merged[0].metrics.citations, Some(100));
        assert_eq!(merged[0].metrics.h_index, Some(7));
    }

    #[test]
    fn interests_union_normalized() {
        let mut a = profile(SourceKind::GoogleScholar, "A B", "U", 1);
        a.interests = vec!["Semantic Web".into(), "Big-Data".into()];
        let mut b = profile(SourceKind::Publons, "A B", "U", 1);
        b.interests = vec!["semantic web".into(), "Databases".into()];
        let merged = merge_profiles(arcs(vec![a, b]));
        assert_eq!(
            merged[0].interests,
            vec!["big data", "databases", "semantic web"]
        );
    }

    #[test]
    fn merge_is_deterministic_regardless_of_input_order() {
        let a = profile(SourceKind::GoogleScholar, "A B", "U", 1);
        let b = profile(SourceKind::Dblp, "A B", "U", 1);
        let c = profile(SourceKind::Publons, "C D", "V", 2);
        let m1 = merge_profiles(arcs(vec![a.clone(), b.clone(), c.clone()]));
        let m2 = merge_profiles(arcs(vec![c, b, a]));
        assert_eq!(m1, m2);
    }

    #[test]
    fn empty_input_yields_no_candidates() {
        assert!(merge_profiles(vec![]).is_empty());
    }
}
