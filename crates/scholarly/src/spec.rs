//! Source kinds and their simulation parameters.

use std::fmt;

/// The six scholarly sources the paper's prototype scrapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SourceKind {
    /// Google Scholar — interests, citation metrics, most publications.
    GoogleScholar,
    /// DBLP — authoritative publication lists, no interests or metrics.
    Dblp,
    /// Publons — review histories, some interests.
    Publons,
    /// ACM Digital Library — partial publications with citation counts.
    AcmDl,
    /// ORCID — identity and full affiliation history.
    Orcid,
    /// ResearcherID (Web of Science) — metrics, partial publications.
    ResearcherId,
}

impl SourceKind {
    /// All six sources in a stable order.
    pub const ALL: [SourceKind; 6] = [
        SourceKind::GoogleScholar,
        SourceKind::Dblp,
        SourceKind::Publons,
        SourceKind::AcmDl,
        SourceKind::Orcid,
        SourceKind::ResearcherId,
    ];

    /// Short key prefix used in per-source profile keys.
    pub fn prefix(self) -> &'static str {
        match self {
            SourceKind::GoogleScholar => "gs",
            SourceKind::Dblp => "dblp",
            SourceKind::Publons => "pub",
            SourceKind::AcmDl => "acm",
            SourceKind::Orcid => "orcid",
            SourceKind::ResearcherId => "rid",
        }
    }
}

impl fmt::Display for SourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SourceKind::GoogleScholar => "Google Scholar",
            SourceKind::Dblp => "DBLP",
            SourceKind::Publons => "Publons",
            SourceKind::AcmDl => "ACM DL",
            SourceKind::Orcid => "ORCID",
            SourceKind::ResearcherId => "ResearcherID",
        };
        f.write_str(name)
    }
}

/// Behavioural parameters of one simulated source.
///
/// The defaults per kind (see [`SourceSpec::for_kind`]) encode the
/// qualitative differences between the real services; every field is
/// adjustable for ablations and failure-injection tests.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    /// Which service this simulates.
    pub kind: SourceKind,
    /// Fraction of the world's scholars that have a profile here.
    pub coverage: f64,
    /// Fraction of a covered scholar's papers this source lists.
    pub publication_coverage: f64,
    /// Whether profiles carry research-interest keywords.
    pub has_interests: bool,
    /// Whether profiles carry citation metrics (citations / h-index).
    pub has_metrics: bool,
    /// Whether profiles carry review records (Publons' specialty).
    pub has_reviews: bool,
    /// Whether profiles carry full affiliation history (ORCID) rather
    /// than only the current affiliation.
    pub has_affiliation_history: bool,
    /// Whether the source supports searching scholars *by interest
    /// keyword* (the paper queries Google Scholar and Publons this way).
    pub supports_interest_search: bool,
    /// Probability a profile's display name is abbreviated to initials
    /// ("L. Zhou") — drives disambiguation difficulty.
    pub name_noise: f64,
    /// Probability any single call fails transiently.
    pub failure_rate: f64,
    /// Calls allowed per rate-limit window before `RateLimited` errors;
    /// `0` disables rate limiting.
    pub rate_limit: u32,
    /// Simulated per-call latency in microseconds (0 in unit tests;
    /// experiment E6 raises it to web-scraping scale).
    pub latency_micros: u64,
    /// Result-page cap: at most this many hits come back from one name
    /// or interest search, like the bounded first page a real site
    /// serves. Hits are the first `max_hits` matches in scholar-id
    /// order, so the truncation is deterministic — and it is what keeps
    /// per-query work flat as the world grows (a popular keyword at
    /// 10^6 scholars matches tens of thousands of profiles; no real
    /// site returns them all). `0` disables the cap.
    pub max_hits: usize,
}

impl SourceSpec {
    /// The default simulation parameters for each service.
    pub fn for_kind(kind: SourceKind) -> Self {
        let base = Self {
            kind,
            coverage: 1.0,
            publication_coverage: 1.0,
            has_interests: false,
            has_metrics: false,
            has_reviews: false,
            has_affiliation_history: false,
            supports_interest_search: false,
            name_noise: 0.0,
            failure_rate: 0.0,
            rate_limit: 0,
            latency_micros: 0,
            max_hits: 100,
        };
        match kind {
            SourceKind::GoogleScholar => Self {
                coverage: 0.90,
                publication_coverage: 0.90,
                has_interests: true,
                has_metrics: true,
                supports_interest_search: true,
                name_noise: 0.05,
                ..base
            },
            SourceKind::Dblp => Self {
                coverage: 0.95,
                publication_coverage: 1.0,
                name_noise: 0.02,
                ..base
            },
            SourceKind::Publons => Self {
                coverage: 0.50,
                publication_coverage: 0.30,
                has_interests: true,
                has_reviews: true,
                supports_interest_search: true,
                name_noise: 0.10,
                ..base
            },
            SourceKind::AcmDl => Self {
                coverage: 0.60,
                publication_coverage: 0.70,
                has_metrics: true,
                name_noise: 0.15,
                ..base
            },
            SourceKind::Orcid => Self {
                coverage: 0.70,
                publication_coverage: 0.60,
                has_affiliation_history: true,
                name_noise: 0.02,
                ..base
            },
            SourceKind::ResearcherId => Self {
                coverage: 0.40,
                publication_coverage: 0.50,
                has_metrics: true,
                name_noise: 0.10,
                ..base
            },
        }
    }

    /// Specs for all six sources with default parameters.
    pub fn all_defaults() -> Vec<SourceSpec> {
        SourceKind::ALL.iter().map(|&k| Self::for_kind(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_unique() {
        let p: std::collections::HashSet<_> = SourceKind::ALL.iter().map(|k| k.prefix()).collect();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn default_specs_encode_service_shapes() {
        let gs = SourceSpec::for_kind(SourceKind::GoogleScholar);
        assert!(gs.has_interests && gs.has_metrics && gs.supports_interest_search);
        let dblp = SourceSpec::for_kind(SourceKind::Dblp);
        assert!(!dblp.has_interests && !dblp.has_metrics);
        assert_eq!(dblp.publication_coverage, 1.0);
        let publons = SourceSpec::for_kind(SourceKind::Publons);
        assert!(publons.has_reviews && publons.supports_interest_search);
        let orcid = SourceSpec::for_kind(SourceKind::Orcid);
        assert!(orcid.has_affiliation_history);
        for spec in SourceSpec::all_defaults() {
            assert!(
                spec.max_hits > 0,
                "{}: searches must page by default",
                spec.kind
            );
        }
    }

    #[test]
    fn all_defaults_covers_six_sources() {
        let specs = SourceSpec::all_defaults();
        assert_eq!(specs.len(), 6);
        let kinds: std::collections::HashSet<_> = specs.iter().map(|s| s.kind).collect();
        assert_eq!(kinds.len(), 6);
    }
}
