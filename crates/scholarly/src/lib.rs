//! Simulated scholarly data sources for the MINARET reproduction.
//!
//! MINARET extracts reviewer information *on-the-fly* from six scholarly
//! websites: Google Scholar, DBLP, Publons, ACM DL, ORCID and
//! ResearcherID (§2.1). This crate simulates all six as in-process
//! services over one shared [`minaret_synth::World`]. Each source exposes
//! a *partial, noisy, differently-shaped* view — Google Scholar has
//! interests and citation metrics, DBLP has complete publication lists but
//! no interests, Publons has review histories, ORCID has affiliation
//! history, and so on — so the framework still faces the real integration
//! problems: fan-out, heterogeneous records, merging, failures, caching.
//!
//! Key pieces:
//!
//! * [`ScholarSource`] — the trait the framework queries; the paper notes
//!   the framework is "flexibly designed to include any further
//!   information from any additional scholarly resource", which this trait
//!   is the seam for.
//! * [`SimulatedSource`] / [`SourceSpec`] — the six built-in simulations.
//! * [`CachingSource`] — a caching decorator with hit/miss statistics
//!   (experiment E6 measures cold vs. warm extraction).
//! * [`SourceRegistry`] — concurrent fan-out with retry over all sources,
//!   running on a persistent worker pool (one long-lived worker per
//!   source plus a shared overflow crew) and hardened by a resilience
//!   layer: per-call deadlines, a whole-fan-out budget, seeded
//!   exponential backoff, and a per-source [`CircuitBreaker`] — so one
//!   dead website degrades coverage instead of taking the recommendation
//!   down. [`SourceRegistry::search_by_interests_report`] issues a whole
//!   label set as one batched fan-out ([`BatchFanOutReport`]), paying the
//!   resilience policy once per source instead of once per label.
//! * [`Clock`] / [`SimulatedClock`] — injectable time, so every deadline,
//!   backoff pause, and breaker cooldown is deterministic under test.
//! * [`FaultSchedule`] — scripted failures for [`SimulatedSource`]
//!   (fail-N-then-recover, permanent outage, fixed slowness, rate-limit
//!   bursts), replacing dice with exact, reproducible fault timelines.
//! * [`merge_profiles`] — merges per-source profiles into candidate
//!   records by (normalized name, affiliation), the way a scraper must.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod clock;
mod error;
pub mod intern;
mod merge;
pub mod persist;
mod record;
mod registry;
mod resilience;
mod sim;
mod spec;

pub use cache::{CacheStats, CachingSource};
pub use clock::{Clock, SimulatedClock, SystemClock};
pub use error::SourceError;
pub use intern::Interner;
pub use merge::{merge_profiles, MergedCandidate};
pub use record::{
    AffiliationRecord, SourceMetrics, SourceProfile, SourcePublication, SourceReview,
};
pub use registry::{
    BatchFanOutReport, FanOutReport, RegistryConfig, RegistryStats, SourceOutcome, SourceRegistry,
    SourceStatus,
};
pub use resilience::{
    BackoffConfig, BreakerConfig, BreakerState, CircuitBreaker, ResilienceConfig,
};
pub use sim::{FaultSchedule, LabeledHits, ProfileStore, ScholarSource, SimulatedSource};
pub use spec::{SourceKind, SourceSpec};
