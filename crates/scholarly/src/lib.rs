//! Simulated scholarly data sources for the MINARET reproduction.
//!
//! MINARET extracts reviewer information *on-the-fly* from six scholarly
//! websites: Google Scholar, DBLP, Publons, ACM DL, ORCID and
//! ResearcherID (§2.1). This crate simulates all six as in-process
//! services over one shared [`minaret_synth::World`]. Each source exposes
//! a *partial, noisy, differently-shaped* view — Google Scholar has
//! interests and citation metrics, DBLP has complete publication lists but
//! no interests, Publons has review histories, ORCID has affiliation
//! history, and so on — so the framework still faces the real integration
//! problems: fan-out, heterogeneous records, merging, failures, caching.
//!
//! Key pieces:
//!
//! * [`ScholarSource`] — the trait the framework queries; the paper notes
//!   the framework is "flexibly designed to include any further
//!   information from any additional scholarly resource", which this trait
//!   is the seam for.
//! * [`SimulatedSource`] / [`SourceSpec`] — the six built-in simulations.
//! * [`CachingSource`] — a caching decorator with hit/miss statistics
//!   (experiment E6 measures cold vs. warm extraction).
//! * [`SourceRegistry`] — concurrent fan-out with retry over all sources.
//! * [`merge_profiles`] — merges per-source profiles into candidate
//!   records by (normalized name, affiliation), the way a scraper must.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod error;
mod merge;
mod record;
mod registry;
mod sim;
mod spec;

pub use cache::{CacheStats, CachingSource};
pub use error::SourceError;
pub use merge::{merge_profiles, MergedCandidate};
pub use record::{
    AffiliationRecord, SourceMetrics, SourceProfile, SourcePublication, SourceReview,
};
pub use registry::{RegistryConfig, RegistryStats, SourceRegistry};
pub use sim::{ScholarSource, SimulatedSource};
pub use spec::{SourceKind, SourceSpec};
