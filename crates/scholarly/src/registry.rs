//! Concurrent fan-out over all registered sources, with resilience:
//! retries with seeded backoff, per-call deadlines, a whole-fan-out
//! budget, and a circuit breaker per source.
//!
//! The design goal is that one stalled or dying source can never take a
//! recommendation down: per-source failures become per-source
//! [`SourceOutcome`]s (including a panicking source implementation), and
//! callers decide how much partial coverage they tolerate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minaret_telemetry::Telemetry;

use crate::clock::{Clock, SystemClock};
use crate::error::SourceError;
use crate::record::SourceProfile;
use crate::resilience::{BreakerState, CircuitBreaker, ResilienceConfig};
use crate::sim::ScholarSource;
use crate::spec::SourceKind;

/// Retry + resilience policy for the registry's fan-out calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Retries per source call for retriable errors.
    pub max_retries: u32,
    /// Whether to query sources concurrently (one thread per source, the
    /// way a scraper overlaps network waits) or sequentially.
    pub concurrent: bool,
    /// Deadlines, backoff, and circuit-breaker policy. The default is
    /// fully disabled (immediate retries, no deadlines, no breaker);
    /// [`ResilienceConfig::standard`] is the production preset.
    pub resilience: ResilienceConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            concurrent: true,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Call counters, exposed to the extraction-cost experiment (E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Source calls issued (including retries).
    pub calls: u64,
    /// Calls that failed retriably and were retried.
    pub retries: u64,
    /// Calls that ultimately failed after exhausting retries (or the
    /// fan-out budget).
    pub gave_up: u64,
    /// Calls classified as timed out against the per-call deadline.
    pub timed_out: u64,
    /// Requests rejected fast because the source's breaker was open.
    pub short_circuited: u64,
}

/// How one source's slice of a fan-out ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceStatus {
    /// The source answered (possibly after retries).
    Ok,
    /// The source was not asked — it does not support this operation
    /// (expected, not a failure).
    Skipped,
    /// The source failed; the error says how (transient exhaustion,
    /// deadline, budget, open breaker, panic, …).
    Failed(SourceError),
}

/// One source's result line in a [`FanOutReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceOutcome {
    /// Which source.
    pub source: SourceKind,
    /// How its slice of the fan-out ended.
    pub status: SourceStatus,
    /// Calls actually issued to it (0 when skipped or short-circuited
    /// before the first attempt).
    pub attempts: u32,
}

/// The structured result of one fan-out: merged profiles plus a
/// per-source outcome ledger, so callers can tell *which* sources are
/// missing from the answer and why (the degraded-mode contract).
#[derive(Debug, Clone, PartialEq)]
pub struct FanOutReport {
    /// Successful sources' profiles, concatenated.
    pub profiles: Vec<SourceProfile>,
    /// One outcome per registered source, in registration order.
    pub outcomes: Vec<SourceOutcome>,
}

impl FanOutReport {
    /// The per-source errors (legacy tuple-API view).
    pub fn errors(&self) -> Vec<SourceError> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                SourceStatus::Failed(e) => Some(e.clone()),
                _ => None,
            })
            .collect()
    }

    /// Sources that answered successfully.
    pub fn responded(&self) -> Vec<SourceKind> {
        self.outcomes
            .iter()
            .filter(|o| o.status == SourceStatus::Ok)
            .map(|o| o.source)
            .collect()
    }

    /// Outcomes of sources that failed (were not skipped).
    pub fn failed(&self) -> Vec<&SourceOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, SourceStatus::Failed(_)))
            .collect()
    }
}

/// The set of scholarly sources MINARET queries, with uniform fan-out.
///
/// The registry mirrors the paper's design: six sources today, but
/// "flexibly designed to include any further information from any
/// additional scholarly resource" — `register` accepts anything
/// implementing [`ScholarSource`].
pub struct SourceRegistry {
    sources: Vec<Arc<dyn ScholarSource>>,
    breakers: Vec<CircuitBreaker>,
    config: RegistryConfig,
    telemetry: Telemetry,
    clock: Arc<dyn Clock>,
    calls: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
    timed_out: AtomicU64,
    short_circuited: AtomicU64,
}

impl std::fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceRegistry")
            .field("sources", &self.kinds())
            .finish()
    }
}

impl SourceRegistry {
    /// Creates an empty registry without telemetry.
    pub fn new(config: RegistryConfig) -> Self {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Creates an empty registry reporting per-source request, retry,
    /// error, timeout, short-circuit, breaker-state and latency series
    /// to `telemetry`.
    pub fn with_telemetry(config: RegistryConfig, telemetry: Telemetry) -> Self {
        Self {
            sources: Vec::new(),
            breakers: Vec::new(),
            config,
            telemetry,
            clock: Arc::new(SystemClock::new()),
            calls: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            short_circuited: AtomicU64::new(0),
        }
    }

    /// Replaces the clock used for deadlines, backoff pauses, and
    /// breaker cooldowns (share one [`crate::SimulatedClock`] with
    /// scripted sources for deterministic tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Adds a source (and its circuit breaker).
    pub fn register(&mut self, source: Arc<dyn ScholarSource>) {
        let kind = source.kind();
        self.sources.push(source);
        let breaker = CircuitBreaker::new(self.config.resilience.breaker);
        self.note_breaker_state(kind.prefix(), BreakerState::Closed);
        self.breakers.push(breaker);
    }

    /// The registered source kinds, in registration order.
    pub fn kinds(&self) -> Vec<SourceKind> {
        self.sources.iter().map(|s| s.kind()).collect()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Call counters so far.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            calls: self.calls.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            short_circuited: self.short_circuited.load(Ordering::Relaxed),
        }
    }

    /// The current breaker state of `kind`'s source, or `None` when no
    /// such source is registered. Reading rolls open → half-open if the
    /// cooldown has elapsed.
    pub fn breaker_state(&self, kind: SourceKind) -> Option<BreakerState> {
        let idx = self.sources.iter().position(|s| s.kind() == kind)?;
        let state = self.breakers[idx].state(self.clock.now_micros());
        Some(state)
    }

    /// Publishes a breaker state to the telemetry gauge.
    fn note_breaker_state(&self, source_label: &str, state: BreakerState) {
        self.telemetry
            .gauge("minaret_breaker_state", &[("source", source_label)])
            .set(state.gauge_value());
    }

    /// Runs `op` against one source with the retry, deadline, backoff,
    /// and breaker policy. Returns the result and the number of calls
    /// actually issued.
    fn call_with_policy<T>(
        &self,
        index: usize,
        kind: SourceKind,
        fanout_deadline: Option<u64>,
        op: impl Fn() -> Result<T, SourceError>,
    ) -> (Result<T, SourceError>, u32) {
        let source_label = kind.prefix();
        let breaker = &self.breakers[index];
        let policy = &self.config.resilience;
        let started = self.clock.now_micros();
        let mut attempts = 0u32;
        let mut last_err = None;
        let result = 'attempts: {
            for attempt in 0..=self.config.max_retries {
                let now = self.clock.now_micros();
                if !breaker.allow(now) {
                    self.short_circuited.fetch_add(1, Ordering::Relaxed);
                    self.telemetry
                        .counter(
                            "minaret_source_short_circuits_total",
                            &[("source", source_label)],
                        )
                        .inc();
                    let err = SourceError::CircuitOpen { source: kind };
                    self.note_error(source_label, &err);
                    self.note_breaker_state(source_label, breaker.state(now));
                    break 'attempts Err(err);
                }
                if let Some(deadline) = fanout_deadline {
                    if now >= deadline {
                        break 'attempts Err(self.budget_exhausted(source_label, kind));
                    }
                }
                attempts += 1;
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .counter("minaret_source_requests_total", &[("source", source_label)])
                    .inc();
                let call_started = self.clock.now_micros();
                let mut outcome = op();
                if policy.call_deadline_micros > 0 {
                    let elapsed = self.clock.now_micros().saturating_sub(call_started);
                    if elapsed > policy.call_deadline_micros {
                        // Even a success that arrives after the deadline
                        // is useless — a real HTTP client would have hung
                        // up already.
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                        self.telemetry
                            .counter("minaret_source_timeouts_total", &[("source", source_label)])
                            .inc();
                        outcome = Err(SourceError::DeadlineExceeded { source: kind });
                    }
                }
                let after_call = self.clock.now_micros();
                match outcome {
                    Ok(v) => {
                        breaker.record_success();
                        self.note_breaker_state(source_label, breaker.state(after_call));
                        break 'attempts Ok(v);
                    }
                    Err(e) => {
                        if e.is_service_fault() {
                            breaker.record_failure(after_call);
                        } else {
                            // The service answered fine; the answer was
                            // just "no" — keep the breaker healthy.
                            breaker.record_success();
                        }
                        self.note_breaker_state(source_label, breaker.state(after_call));
                        self.note_error(source_label, &e);
                        if e.is_retriable() && attempt < self.config.max_retries {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.telemetry
                                .counter(
                                    "minaret_source_retries_total",
                                    &[("source", source_label)],
                                )
                                .inc();
                            let delay = policy.backoff.delay_micros(attempt, kind as u64);
                            if let Some(deadline) = fanout_deadline {
                                if after_call.saturating_add(delay) >= deadline {
                                    break 'attempts Err(self.budget_exhausted(source_label, kind));
                                }
                            }
                            self.clock.sleep_micros(delay);
                            last_err = Some(e);
                        } else {
                            if e.is_retriable() {
                                self.gave_up.fetch_add(1, Ordering::Relaxed);
                                self.telemetry
                                    .counter(
                                        "minaret_source_gave_up_total",
                                        &[("source", source_label)],
                                    )
                                    .inc();
                            }
                            break 'attempts Err(e);
                        }
                    }
                }
            }
            Err(last_err.expect("loop executes at least once"))
        };
        self.telemetry
            .histogram("minaret_source_call_micros", &[("source", source_label)])
            .observe(self.clock.now_micros().saturating_sub(started));
        (result, attempts)
    }

    /// Builds (and counts) a budget-exhaustion error for `kind`.
    fn budget_exhausted(&self, source_label: &str, kind: SourceKind) -> SourceError {
        self.gave_up.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .counter(
                "minaret_source_budget_exhausted_total",
                &[("source", source_label)],
            )
            .inc();
        let err = SourceError::BudgetExhausted { source: kind };
        self.note_error(source_label, &err);
        err
    }

    /// Counts one error occurrence by class.
    fn note_error(&self, source_label: &str, error: &SourceError) {
        let class = match error {
            SourceError::Transient { .. } => "transient",
            SourceError::RateLimited { .. } => "rate_limited",
            SourceError::NotFound { .. } => "not_found",
            SourceError::Unsupported { .. } => "unsupported",
            SourceError::DeadlineExceeded { .. } => "deadline",
            SourceError::BudgetExhausted { .. } => "budget",
            SourceError::CircuitOpen { .. } => "circuit_open",
            SourceError::Internal { .. } => "internal",
        };
        self.telemetry
            .counter(
                "minaret_source_errors_total",
                &[("source", source_label), ("kind", class)],
            )
            .inc();
    }

    /// Fans a query out to every source and collects per-source
    /// outcomes. Sources for which `applies` is false are skipped
    /// without a call.
    ///
    /// Per-source failures (after retries) are per-source outcomes, not
    /// fatal — a scraper that loses one site still recommends from the
    /// other five. That includes a source whose thread panics: the panic
    /// is caught at the join and converted into a per-source
    /// [`SourceError::Internal`], so the siblings still merge.
    fn fan_out(
        &self,
        applies: impl Fn(&dyn ScholarSource) -> bool + Sync,
        call: impl Fn(&dyn ScholarSource) -> Result<Vec<SourceProfile>, SourceError> + Sync,
    ) -> FanOutReport {
        let budget = self.config.resilience.fanout_budget_micros;
        let fanout_deadline = (budget > 0).then(|| self.clock.now_micros().saturating_add(budget));
        // One slot per source: None when `applies` skipped it, otherwise
        // the call result plus the attempt count.
        type Slot = Option<(Result<Vec<SourceProfile>, SourceError>, u32)>;
        let results: Vec<(SourceKind, Slot)> = if self.config.concurrent {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .sources
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let s = s.clone();
                        let applies = &applies;
                        let call = &call;
                        let kind = s.kind();
                        let handle = scope.spawn(move || {
                            applies(s.as_ref()).then(|| {
                                self.call_with_policy(i, kind, fanout_deadline, || call(s.as_ref()))
                            })
                        });
                        (kind, i, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(kind, i, h)| match h.join() {
                        Ok(r) => (kind, r),
                        Err(payload) => (kind, Some((Err(self.note_panic(i, kind, payload)), 1))),
                    })
                    .collect()
            })
        } else {
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let kind = s.kind();
                    let result = applies(s.as_ref()).then(|| {
                        self.call_with_policy(i, kind, fanout_deadline, || call(s.as_ref()))
                    });
                    (kind, result)
                })
                .collect()
        };
        let mut profiles = Vec::new();
        let mut outcomes = Vec::new();
        for (kind, result) in results {
            let outcome = match result {
                None => SourceOutcome {
                    source: kind,
                    status: SourceStatus::Skipped,
                    attempts: 0,
                },
                Some((Ok(mut v), attempts)) => {
                    profiles.append(&mut v);
                    SourceOutcome {
                        source: kind,
                        status: SourceStatus::Ok,
                        attempts,
                    }
                }
                Some((Err(e), attempts)) => SourceOutcome {
                    source: kind,
                    status: SourceStatus::Failed(e),
                    attempts,
                },
            };
            outcomes.push(outcome);
        }
        FanOutReport { profiles, outcomes }
    }

    /// Converts a panicked source thread into a per-source error: the
    /// breaker records the failure and the siblings' results survive.
    fn note_panic(
        &self,
        index: usize,
        kind: SourceKind,
        payload: Box<dyn std::any::Any + Send>,
    ) -> SourceError {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "source thread panicked".to_string());
        let source_label = kind.prefix();
        let now = self.clock.now_micros();
        self.breakers[index].record_failure(now);
        self.note_breaker_state(source_label, self.breakers[index].state(now));
        let err = SourceError::Internal {
            source: kind,
            detail,
        };
        self.note_error(source_label, &err);
        err
    }

    /// Searches all sources by scholar name, with per-source outcomes.
    pub fn search_by_name_report(&self, name: &str) -> FanOutReport {
        let started = self.clock.now_micros();
        let report = self.fan_out(|_| true, |s| s.search_by_name(name));
        self.telemetry
            .histogram("minaret_fanout_micros", &[("query", "name")])
            .observe(self.clock.now_micros().saturating_sub(started));
        report
    }

    /// Searches all sources by scholar name (legacy tuple view).
    pub fn search_by_name(&self, name: &str) -> (Vec<SourceProfile>, Vec<SourceError>) {
        let report = self.search_by_name_report(name);
        let errors = report.errors();
        (report.profiles, errors)
    }

    /// Searches all interest-capable sources by research-interest
    /// keyword, with per-source outcomes; incapable sources are marked
    /// [`SourceStatus::Skipped`] (their absence is expected, not an
    /// error condition).
    pub fn search_by_interest_report(&self, keyword: &str) -> FanOutReport {
        let started = self.clock.now_micros();
        let report = self.fan_out(
            |s| s.supports_interest_search(),
            |s| s.search_by_interest(keyword),
        );
        self.telemetry
            .histogram("minaret_fanout_micros", &[("query", "interest")])
            .observe(self.clock.now_micros().saturating_sub(started));
        report
    }

    /// Searches all interest-capable sources (legacy tuple view).
    pub fn search_by_interest(&self, keyword: &str) -> (Vec<SourceProfile>, Vec<SourceError>) {
        let report = self.search_by_interest_report(keyword);
        let errors = report.errors();
        (report.profiles, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimulatedClock;
    use crate::resilience::BreakerConfig;
    use crate::sim::{FaultSchedule, SimulatedSource};
    use crate::spec::SourceSpec;
    use minaret_synth::{World, WorldConfig, WorldGenerator};

    fn world() -> Arc<World> {
        Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 150,
                ..Default::default()
            })
            .generate(),
        )
    }

    fn full_registry(world: &Arc<World>, concurrent: bool) -> SourceRegistry {
        let mut reg = SourceRegistry::new(RegistryConfig {
            concurrent,
            ..Default::default()
        });
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        reg
    }

    #[test]
    fn registry_lists_all_six_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        assert_eq!(reg.len(), 6);
        assert_eq!(reg.kinds().len(), 6);
        assert!(!reg.is_empty());
    }

    #[test]
    fn name_fan_out_merges_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        let name = w.scholars()[0].full_name();
        let (profiles, errors) = reg.search_by_name(&name);
        assert!(errors.is_empty());
        // The scholar is covered by several sources, so multiple profiles
        // with the same truth id come back.
        let truth_hits = profiles
            .iter()
            .filter(|p| p.truth == w.scholars()[0].id)
            .count();
        assert!(
            truth_hits >= 2,
            "only {truth_hits} sources returned the scholar"
        );
    }

    #[test]
    fn concurrent_and_sequential_agree() {
        let w = world();
        let reg_c = full_registry(&w, true);
        let reg_s = full_registry(&w, false);
        let name = w.scholars()[5].full_name();
        let (mut a, _) = reg_c.search_by_name(&name);
        let (mut b, _) = reg_s.search_by_name(&name);
        let key = |p: &SourceProfile| (p.source, p.key.clone());
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn interest_search_skips_unsupporting_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        let label = w.ontology.label(w.scholars()[0].interests[0]);
        let report = reg.search_by_interest_report(label);
        assert!(report.errors().is_empty());
        // Only GS and Publons support interest search.
        for p in &report.profiles {
            assert!(matches!(
                p.source,
                SourceKind::GoogleScholar | SourceKind::Publons
            ));
        }
        // The incapable sources are marked skipped, not failed — being
        // asked a question you don't support is not ill health.
        for o in &report.outcomes {
            match o.source {
                SourceKind::GoogleScholar | SourceKind::Publons => {
                    assert_eq!(o.status, SourceStatus::Ok, "{:?}", o.source);
                    assert!(o.attempts >= 1);
                }
                _ => {
                    assert_eq!(o.status, SourceStatus::Skipped, "{:?}", o.source);
                    assert_eq!(o.attempts, 0);
                }
            }
        }
    }

    #[test]
    fn retries_absorb_transient_failures() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 6,
            concurrent: false,
            ..Default::default()
        });
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 0.4;
        reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        let mut failures = 0;
        for i in 0..30 {
            let name = w.scholars()[i].full_name();
            let (_, errors) = reg.search_by_name(&name);
            failures += errors.len();
        }
        // 0.4^7 per call chain — all calls should eventually succeed.
        assert_eq!(failures, 0);
        let stats = reg.stats();
        assert!(stats.retries > 0, "expected some retries to occur");
        assert!(stats.calls > 30);
    }

    #[test]
    fn telemetry_tracks_per_source_requests_and_retries() {
        let w = world();
        let telemetry = minaret_telemetry::Telemetry::new();
        let mut reg = SourceRegistry::with_telemetry(
            RegistryConfig {
                max_retries: 6,
                concurrent: false,
                ..Default::default()
            },
            telemetry.clone(),
        );
        let mut gs = SourceSpec::for_kind(SourceKind::GoogleScholar);
        gs.failure_rate = 0.4;
        reg.register(Arc::new(SimulatedSource::new(gs, w.clone())));
        reg.register(Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(SourceKind::Dblp),
            w.clone(),
        )));
        for i in 0..20 {
            let _ = reg.search_by_name(&w.scholars()[i].full_name());
        }
        let stats = reg.stats();
        let text = telemetry.encode_prometheus();
        // Telemetry and legacy counters must agree.
        let gs_reqs = telemetry
            .counter("minaret_source_requests_total", &[("source", "gs")])
            .get();
        let dblp_reqs = telemetry
            .counter("minaret_source_requests_total", &[("source", "dblp")])
            .get();
        assert_eq!(gs_reqs + dblp_reqs, stats.calls);
        assert_eq!(dblp_reqs, 20, "DBLP never fails, one call per query");
        assert!(
            text.contains("minaret_source_retries_total{source=\"gs\"}"),
            "{text}"
        );
        assert!(
            text.contains("minaret_source_errors_total{kind=\"transient\",source=\"gs\"}"),
            "{text}"
        );
        assert!(
            text.contains("minaret_source_call_micros_count{source=\"dblp\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("minaret_fanout_micros_count{query=\"name\"} 20"),
            "{text}"
        );
        // The breaker gauge is published from registration time so that
        // scrapes see every source even before any traffic.
        assert!(
            text.contains("minaret_breaker_state{source=\"dblp\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn exhausted_retries_surface_as_errors() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            concurrent: false,
            ..Default::default()
        });
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 1.0;
        reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        let (profiles, errors) = reg.search_by_name("anyone");
        assert!(profiles.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(reg.stats().gave_up >= 1);
    }

    #[test]
    fn breaker_trips_and_short_circuits_a_dead_source() {
        let w = world();
        let clock = SimulatedClock::new();
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.latency_micros = 0;
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            concurrent: false,
            resilience: ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown_micros: 1_000_000,
                    probe_successes: 1,
                },
                ..ResilienceConfig::disabled()
            },
        })
        .with_clock(clock.clone());
        reg.register(Arc::new(
            SimulatedSource::new(spec, w.clone())
                .with_fault(FaultSchedule::PermanentOutage)
                .with_clock(clock.clone()),
        ));
        // Two fan-outs x two attempts = 4 consecutive failures >= 3.
        let _ = reg.search_by_name("a");
        let _ = reg.search_by_name("b");
        assert_eq!(
            reg.breaker_state(SourceKind::GoogleScholar),
            Some(BreakerState::Open)
        );
        // The third fan-out is rejected without touching the source.
        let calls_before = reg.stats().calls;
        let report = reg.search_by_name_report("c");
        assert_eq!(reg.stats().calls, calls_before);
        assert!(reg.stats().short_circuited >= 1);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(
            report.outcomes[0].status,
            SourceStatus::Failed(SourceError::CircuitOpen {
                source: SourceKind::GoogleScholar
            })
        );
        assert_eq!(report.outcomes[0].attempts, 0);
    }

    #[test]
    fn slow_source_times_out_against_call_deadline() {
        let w = world();
        let clock = SimulatedClock::new();
        let mut spec = SourceSpec::for_kind(SourceKind::Dblp);
        spec.latency_micros = 0;
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 0,
            concurrent: false,
            resilience: ResilienceConfig {
                call_deadline_micros: 10_000,
                ..ResilienceConfig::disabled()
            },
        })
        .with_clock(clock.clone());
        reg.register(Arc::new(
            SimulatedSource::new(spec, w.clone())
                .with_fault(FaultSchedule::Slow {
                    latency_micros: 50_000,
                })
                .with_clock(clock.clone()),
        ));
        let report = reg.search_by_name_report(&w.scholars()[0].full_name());
        assert_eq!(
            report.outcomes[0].status,
            SourceStatus::Failed(SourceError::DeadlineExceeded {
                source: SourceKind::Dblp
            })
        );
        assert_eq!(reg.stats().timed_out, 1);
    }
}
