//! Concurrent fan-out over all registered sources, with retry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use minaret_telemetry::Telemetry;

use crate::error::SourceError;
use crate::record::SourceProfile;
use crate::sim::ScholarSource;
use crate::spec::SourceKind;

/// Retry policy for the registry's fan-out calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Retries per source call for retriable errors.
    pub max_retries: u32,
    /// Whether to query sources concurrently (one thread per source, the
    /// way a scraper overlaps network waits) or sequentially.
    pub concurrent: bool,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            concurrent: true,
        }
    }
}

/// Call counters, exposed to the extraction-cost experiment (E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Source calls issued (including retries).
    pub calls: u64,
    /// Calls that failed retriably and were retried.
    pub retries: u64,
    /// Calls that ultimately failed after exhausting retries.
    pub gave_up: u64,
}

/// The set of scholarly sources MINARET queries, with uniform fan-out.
///
/// The registry mirrors the paper's design: six sources today, but
/// "flexibly designed to include any further information from any
/// additional scholarly resource" — `register` accepts anything
/// implementing [`ScholarSource`].
pub struct SourceRegistry {
    sources: Vec<Arc<dyn ScholarSource>>,
    config: RegistryConfig,
    telemetry: Telemetry,
    calls: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
}

impl std::fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceRegistry")
            .field("sources", &self.kinds())
            .finish()
    }
}

impl SourceRegistry {
    /// Creates an empty registry without telemetry.
    pub fn new(config: RegistryConfig) -> Self {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Creates an empty registry reporting per-source request, retry,
    /// error, and latency series to `telemetry`.
    pub fn with_telemetry(config: RegistryConfig, telemetry: Telemetry) -> Self {
        Self {
            sources: Vec::new(),
            config,
            telemetry,
            calls: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
        }
    }

    /// Adds a source.
    pub fn register(&mut self, source: Arc<dyn ScholarSource>) {
        self.sources.push(source);
    }

    /// The registered source kinds, in registration order.
    pub fn kinds(&self) -> Vec<SourceKind> {
        self.sources.iter().map(|s| s.kind()).collect()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Call counters so far.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            calls: self.calls.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            gave_up: self.gave_up.load(Ordering::Relaxed),
        }
    }

    /// Runs `op` against one source with the retry policy.
    fn with_retry<T>(
        &self,
        kind: SourceKind,
        op: impl Fn() -> Result<T, SourceError>,
    ) -> Result<T, SourceError> {
        let source_label = kind.prefix();
        let started = Instant::now();
        let mut last_err = None;
        let result = 'attempts: {
            for attempt in 0..=self.config.max_retries {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .counter("minaret_source_requests_total", &[("source", source_label)])
                    .inc();
                match op() {
                    Ok(v) => break 'attempts Ok(v),
                    Err(e) if e.is_retriable() && attempt < self.config.max_retries => {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        self.note_error(source_label, &e);
                        self.telemetry
                            .counter("minaret_source_retries_total", &[("source", source_label)])
                            .inc();
                        last_err = Some(e);
                    }
                    Err(e) => {
                        if e.is_retriable() {
                            self.gave_up.fetch_add(1, Ordering::Relaxed);
                            self.telemetry
                                .counter(
                                    "minaret_source_gave_up_total",
                                    &[("source", source_label)],
                                )
                                .inc();
                        }
                        self.note_error(source_label, &e);
                        break 'attempts Err(e);
                    }
                }
            }
            Err(last_err.expect("loop executes at least once"))
        };
        self.telemetry
            .histogram("minaret_source_call_micros", &[("source", source_label)])
            .observe_duration(started.elapsed());
        result
    }

    /// Counts one error occurrence by class.
    fn note_error(&self, source_label: &str, error: &SourceError) {
        let class = match error {
            SourceError::Transient { .. } => "transient",
            SourceError::RateLimited { .. } => "rate_limited",
            SourceError::NotFound { .. } => "not_found",
            SourceError::Unsupported { .. } => "unsupported",
        };
        self.telemetry
            .counter(
                "minaret_source_errors_total",
                &[("source", source_label), ("kind", class)],
            )
            .inc();
    }

    /// Fans a query out to every source and concatenates the successes.
    ///
    /// Per-source failures (after retries) are collected, not fatal — a
    /// scraper that loses one site still recommends from the other five.
    fn fan_out(
        &self,
        op: impl Fn(&dyn ScholarSource) -> Result<Vec<SourceProfile>, SourceError> + Sync,
    ) -> (Vec<SourceProfile>, Vec<SourceError>) {
        if self.config.concurrent {
            let results: Vec<Result<Vec<SourceProfile>, SourceError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .sources
                        .iter()
                        .map(|s| {
                            let s = s.clone();
                            let op = &op;
                            scope.spawn(move || self.with_retry(s.kind(), || op(s.as_ref())))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("source query thread panicked"))
                        .collect()
                });
            let mut profiles = Vec::new();
            let mut errors = Vec::new();
            for r in results {
                match r {
                    Ok(mut v) => profiles.append(&mut v),
                    Err(e) => errors.push(e),
                }
            }
            (profiles, errors)
        } else {
            let mut profiles = Vec::new();
            let mut errors = Vec::new();
            for s in &self.sources {
                match self.with_retry(s.kind(), || op(s.as_ref())) {
                    Ok(mut v) => profiles.append(&mut v),
                    Err(e) => errors.push(e),
                }
            }
            (profiles, errors)
        }
    }

    /// Searches all sources by scholar name.
    pub fn search_by_name(&self, name: &str) -> (Vec<SourceProfile>, Vec<SourceError>) {
        let started = Instant::now();
        let result = self.fan_out(|s| s.search_by_name(name));
        self.telemetry
            .histogram("minaret_fanout_micros", &[("query", "name")])
            .observe_duration(started.elapsed());
        result
    }

    /// Searches all interest-capable sources by research-interest
    /// keyword; incapable sources are skipped silently (their
    /// `Unsupported` is expected, not an error condition).
    pub fn search_by_interest(&self, keyword: &str) -> (Vec<SourceProfile>, Vec<SourceError>) {
        let started = Instant::now();
        let (profiles, errors) = self.fan_out(|s| {
            if s.supports_interest_search() {
                s.search_by_interest(keyword)
            } else {
                Ok(Vec::new())
            }
        });
        self.telemetry
            .histogram("minaret_fanout_micros", &[("query", "interest")])
            .observe_duration(started.elapsed());
        (profiles, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimulatedSource;
    use crate::spec::SourceSpec;
    use minaret_synth::{World, WorldConfig, WorldGenerator};

    fn world() -> Arc<World> {
        Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 150,
                ..Default::default()
            })
            .generate(),
        )
    }

    fn full_registry(world: &Arc<World>, concurrent: bool) -> SourceRegistry {
        let mut reg = SourceRegistry::new(RegistryConfig {
            concurrent,
            ..Default::default()
        });
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        reg
    }

    #[test]
    fn registry_lists_all_six_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        assert_eq!(reg.len(), 6);
        assert_eq!(reg.kinds().len(), 6);
        assert!(!reg.is_empty());
    }

    #[test]
    fn name_fan_out_merges_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        let name = w.scholars()[0].full_name();
        let (profiles, errors) = reg.search_by_name(&name);
        assert!(errors.is_empty());
        // The scholar is covered by several sources, so multiple profiles
        // with the same truth id come back.
        let truth_hits = profiles
            .iter()
            .filter(|p| p.truth == w.scholars()[0].id)
            .count();
        assert!(
            truth_hits >= 2,
            "only {truth_hits} sources returned the scholar"
        );
    }

    #[test]
    fn concurrent_and_sequential_agree() {
        let w = world();
        let reg_c = full_registry(&w, true);
        let reg_s = full_registry(&w, false);
        let name = w.scholars()[5].full_name();
        let (mut a, _) = reg_c.search_by_name(&name);
        let (mut b, _) = reg_s.search_by_name(&name);
        let key = |p: &SourceProfile| (p.source, p.key.clone());
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn interest_search_skips_unsupporting_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        let label = w.ontology.label(w.scholars()[0].interests[0]);
        let (profiles, errors) = reg.search_by_interest(label);
        assert!(errors.is_empty());
        // Only GS and Publons support interest search.
        for p in &profiles {
            assert!(matches!(
                p.source,
                SourceKind::GoogleScholar | SourceKind::Publons
            ));
        }
    }

    #[test]
    fn retries_absorb_transient_failures() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 6,
            concurrent: false,
        });
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 0.4;
        reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        let mut failures = 0;
        for i in 0..30 {
            let name = w.scholars()[i].full_name();
            let (_, errors) = reg.search_by_name(&name);
            failures += errors.len();
        }
        // 0.4^7 per call chain — all calls should eventually succeed.
        assert_eq!(failures, 0);
        let stats = reg.stats();
        assert!(stats.retries > 0, "expected some retries to occur");
        assert!(stats.calls > 30);
    }

    #[test]
    fn telemetry_tracks_per_source_requests_and_retries() {
        let w = world();
        let telemetry = minaret_telemetry::Telemetry::new();
        let mut reg = SourceRegistry::with_telemetry(
            RegistryConfig {
                max_retries: 6,
                concurrent: false,
            },
            telemetry.clone(),
        );
        let mut gs = SourceSpec::for_kind(SourceKind::GoogleScholar);
        gs.failure_rate = 0.4;
        reg.register(Arc::new(SimulatedSource::new(gs, w.clone())));
        reg.register(Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(SourceKind::Dblp),
            w.clone(),
        )));
        for i in 0..20 {
            let _ = reg.search_by_name(&w.scholars()[i].full_name());
        }
        let stats = reg.stats();
        let text = telemetry.encode_prometheus();
        // Telemetry and legacy counters must agree.
        let gs_reqs = telemetry
            .counter("minaret_source_requests_total", &[("source", "gs")])
            .get();
        let dblp_reqs = telemetry
            .counter("minaret_source_requests_total", &[("source", "dblp")])
            .get();
        assert_eq!(gs_reqs + dblp_reqs, stats.calls);
        assert_eq!(dblp_reqs, 20, "DBLP never fails, one call per query");
        assert!(
            text.contains("minaret_source_retries_total{source=\"gs\"}"),
            "{text}"
        );
        assert!(
            text.contains("minaret_source_errors_total{kind=\"transient\",source=\"gs\"}"),
            "{text}"
        );
        assert!(
            text.contains("minaret_source_call_micros_count{source=\"dblp\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("minaret_fanout_micros_count{query=\"name\"} 20"),
            "{text}"
        );
    }

    #[test]
    fn exhausted_retries_surface_as_errors() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            concurrent: false,
        });
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 1.0;
        reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        let (profiles, errors) = reg.search_by_name("anyone");
        assert!(profiles.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(reg.stats().gave_up >= 1);
    }
}
