//! Concurrent fan-out over all registered sources, with resilience:
//! retries with seeded backoff, per-call deadlines, a whole-fan-out
//! budget, and a circuit breaker per source.
//!
//! Fan-outs run on a **persistent worker pool**: one long-lived worker
//! thread per source (so each source's calls have an affinity home) plus
//! a small shared overflow crew that absorbs spill when a source's
//! worker is busy. Enqueueing a job is two atomic operations and a
//! channel send — no thread spawn per call, which matters when the
//! pipeline issues many fan-outs per recommendation.
//!
//! The design goal is that one stalled or dying source can never take a
//! recommendation down: per-source failures become per-source
//! [`SourceOutcome`]s (including a panicking source implementation,
//! contained by `catch_unwind` so the worker thread survives), and
//! callers decide how much partial coverage they tolerate.

use std::any::Any;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel;
use minaret_concurrent::{ConcurrentMap, ShardedMap};
use minaret_telemetry::Telemetry;
// parking_lot throughout (no std lock poisoning): a leader that panics
// inside a source call must not wedge the coalescing map or its cells
// for every later fan-out.
use parking_lot::{Condvar, Mutex, RwLock};

use crate::clock::{Clock, SystemClock};
use crate::error::SourceError;
use crate::intern;
use crate::record::SourceProfile;
use crate::resilience::{BreakerState, CircuitBreaker, ResilienceConfig};
use crate::sim::ScholarSource;
use crate::spec::SourceKind;

/// Retry + resilience policy for the registry's fan-out calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegistryConfig {
    /// Retries per source call for retriable errors.
    pub max_retries: u32,
    /// Whether to query sources concurrently (on the persistent worker
    /// pool, the way a scraper overlaps network waits) or sequentially
    /// on the calling thread (deterministic, for simulated-clock tests).
    pub concurrent: bool,
    /// Deadlines, backoff, and circuit-breaker policy. The default is
    /// fully disabled (immediate retries, no deadlines, no breaker);
    /// [`ResilienceConfig::standard`] is the production preset.
    pub resilience: ResilienceConfig,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            max_retries: 3,
            concurrent: true,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// Call counters, exposed to the extraction-cost experiment (E6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Source calls issued (including retries).
    pub calls: u64,
    /// Calls that failed retriably and were retried.
    pub retries: u64,
    /// Calls that ultimately failed after exhausting retries (or the
    /// fan-out budget).
    pub gave_up: u64,
    /// Calls classified as timed out against the per-call deadline.
    pub timed_out: u64,
    /// Requests rejected fast because the source's breaker was open.
    pub short_circuited: u64,
}

/// How one source's slice of a fan-out ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceStatus {
    /// The source answered (possibly after retries).
    Ok,
    /// The source was not asked — it does not support this operation
    /// (expected, not a failure).
    Skipped,
    /// The source failed; the error says how (transient exhaustion,
    /// deadline, budget, open breaker, panic, …).
    Failed(SourceError),
}

/// One source's result line in a [`FanOutReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceOutcome {
    /// Which source.
    pub source: SourceKind,
    /// How its slice of the fan-out ended.
    pub status: SourceStatus,
    /// Calls actually issued to it (0 when skipped or short-circuited
    /// before the first attempt).
    pub attempts: u32,
}

/// The structured result of one fan-out: merged profiles plus a
/// per-source outcome ledger, so callers can tell *which* sources are
/// missing from the answer and why (the degraded-mode contract).
#[derive(Debug, Clone, PartialEq)]
pub struct FanOutReport {
    /// Successful sources' profiles, concatenated. `Arc`-shared with the
    /// sources' own stores (and any cache layer): fanning the same
    /// profile out twice clones a pointer, not the record.
    pub profiles: Vec<Arc<SourceProfile>>,
    /// One outcome per registered source, in registration order.
    pub outcomes: Vec<SourceOutcome>,
}

impl FanOutReport {
    /// The per-source errors (legacy tuple-API view).
    pub fn errors(&self) -> Vec<SourceError> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                SourceStatus::Failed(e) => Some(e.clone()),
                _ => None,
            })
            .collect()
    }

    /// Sources that answered successfully.
    pub fn responded(&self) -> Vec<SourceKind> {
        self.outcomes
            .iter()
            .filter(|o| o.status == SourceStatus::Ok)
            .map(|o| o.source)
            .collect()
    }

    /// Outcomes of sources that failed (were not skipped).
    pub fn failed(&self) -> Vec<&SourceOutcome> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, SourceStatus::Failed(_)))
            .collect()
    }
}

/// The result of one **batched** interest fan-out
/// ([`SourceRegistry::search_by_interests_report`]): per-label hits
/// merged across sources, plus the same per-source outcome ledger as
/// [`FanOutReport`]. One batched fan-out costs each source exactly one
/// policy-governed call regardless of label count — the resilience
/// accounting (deadline, budget, breaker, retries) applies once per
/// source per batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchFanOutReport {
    /// Hits per requested label, in input order. A label nobody
    /// registered gets an empty vector. Within one label, profiles are
    /// concatenated in source-registration order (deterministic).
    /// Labels are interned `Arc<str>`s and profiles are `Arc`-shared
    /// with the sources that produced them.
    pub by_label: Vec<(Arc<str>, Vec<Arc<SourceProfile>>)>,
    /// One outcome per registered source, in registration order. A
    /// failed source failed the *whole batch* — every label in it.
    pub outcomes: Vec<SourceOutcome>,
}

impl BatchFanOutReport {
    /// The per-source errors.
    pub fn errors(&self) -> Vec<SourceError> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                SourceStatus::Failed(e) => Some(e.clone()),
                _ => None,
            })
            .collect()
    }

    /// Total profiles across all labels (before any dedup).
    pub fn profile_count(&self) -> usize {
        self.by_label.iter().map(|(_, hits)| hits.len()).sum()
    }
}

/// One registered source with its breaker — the unit a pool job works
/// on. Cloning is cheap (two `Arc`s + a tag).
#[derive(Clone)]
struct SourceEntry {
    source: Arc<dyn ScholarSource>,
    breaker: Arc<CircuitBreaker>,
    kind: SourceKind,
}

/// State shared between the registry handle and its pool workers:
/// policy, telemetry, clock, and the call counters. Jobs capture this
/// behind an `Arc`, which is what lets fan-out work move to long-lived
/// threads instead of scoped borrows.
struct RegistryShared {
    config: RegistryConfig,
    telemetry: Telemetry,
    clock: RwLock<Arc<dyn Clock>>,
    sources: RwLock<Vec<SourceEntry>>,
    /// The persistent worker pool, spawned lazily on the first
    /// concurrent fan-out. Lives here (not on the handle) so
    /// [`SourceRegistry::scoped_with_budget`] views share one pool.
    pool: OnceLock<WorkerPool>,
    calls: AtomicU64,
    retries: AtomicU64,
    gave_up: AtomicU64,
    timed_out: AtomicU64,
    short_circuited: AtomicU64,
    /// Jobs enqueued on the pool but not yet started.
    queue_depth: AtomicU64,
    /// In-flight single-flight cells, keyed by (source, fan-out key).
    /// Type-erased so one map serves any fan-out result type. Sharded:
    /// leader election for one fan-out key never contends with
    /// unrelated fan-outs — only same-shard keys share a lock, and the
    /// per-entry leader/follower handoff lives in the cell's own
    /// `Mutex`/`Condvar`, not the map's.
    inflight: ShardedMap<(SourceKind, u64), Arc<dyn Any + Send + Sync>>,
    /// Fan-out slices answered by joining another caller's in-flight
    /// computation instead of issuing their own source call.
    coalesced: AtomicU64,
}

impl RegistryShared {
    fn clock(&self) -> Arc<dyn Clock> {
        self.clock.read().clone()
    }

    /// Publishes a breaker state to the telemetry gauge.
    fn note_breaker_state(&self, source_label: &str, state: BreakerState) {
        self.telemetry
            .gauge("minaret_breaker_state", &[("source", source_label)])
            .set(state.gauge_value());
    }

    fn note_enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::AcqRel) + 1;
        self.telemetry
            .gauge("minaret_pool_queue_depth", &[])
            .set(depth as i64);
    }

    fn note_dequeue(&self) {
        let depth = self.queue_depth.fetch_sub(1, Ordering::AcqRel) - 1;
        self.telemetry
            .gauge("minaret_pool_queue_depth", &[])
            .set(depth as i64);
    }

    /// Runs `op` against one source with the retry, deadline, backoff,
    /// and breaker policy. Returns the result and the number of calls
    /// actually issued. For a batched operation this runs **once for the
    /// whole batch**: one deadline, one retry ladder, one breaker
    /// verdict, regardless of how many labels the batch carries.
    fn call_with_policy<T>(
        &self,
        entry: &SourceEntry,
        fanout_deadline: Option<u64>,
        op: impl Fn() -> Result<T, SourceError>,
    ) -> (Result<T, SourceError>, u32) {
        let kind = entry.kind;
        let source_label = kind.prefix();
        let breaker = entry.breaker.as_ref();
        let policy = &self.config.resilience;
        let clock = self.clock();
        let started = clock.now_micros();
        let mut attempts = 0u32;
        let mut last_err = None;
        let result = 'attempts: {
            for attempt in 0..=self.config.max_retries {
                let now = clock.now_micros();
                if !breaker.allow(now) {
                    self.short_circuited.fetch_add(1, Ordering::Relaxed);
                    self.telemetry
                        .counter(
                            "minaret_source_short_circuits_total",
                            &[("source", source_label)],
                        )
                        .inc();
                    let err = SourceError::CircuitOpen { source: kind };
                    self.note_error(source_label, &err);
                    self.note_breaker_state(source_label, breaker.state(now));
                    break 'attempts Err(err);
                }
                if let Some(deadline) = fanout_deadline {
                    if now >= deadline {
                        break 'attempts Err(self.budget_exhausted(source_label, kind));
                    }
                }
                attempts += 1;
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.telemetry
                    .counter("minaret_source_requests_total", &[("source", source_label)])
                    .inc();
                let call_started = clock.now_micros();
                let mut outcome = op();
                if policy.call_deadline_micros > 0 {
                    let elapsed = clock.now_micros().saturating_sub(call_started);
                    if elapsed > policy.call_deadline_micros {
                        // Even a success that arrives after the deadline
                        // is useless — a real HTTP client would have hung
                        // up already.
                        self.timed_out.fetch_add(1, Ordering::Relaxed);
                        self.telemetry
                            .counter("minaret_source_timeouts_total", &[("source", source_label)])
                            .inc();
                        outcome = Err(SourceError::DeadlineExceeded { source: kind });
                    }
                }
                let after_call = clock.now_micros();
                match outcome {
                    Ok(v) => {
                        breaker.record_success();
                        self.note_breaker_state(source_label, breaker.state(after_call));
                        break 'attempts Ok(v);
                    }
                    Err(e) => {
                        if e.is_service_fault() {
                            breaker.record_failure(after_call);
                        } else {
                            // The service answered fine; the answer was
                            // just "no" — keep the breaker healthy.
                            breaker.record_success();
                        }
                        self.note_breaker_state(source_label, breaker.state(after_call));
                        self.note_error(source_label, &e);
                        if e.is_retriable() && attempt < self.config.max_retries {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.telemetry
                                .counter(
                                    "minaret_source_retries_total",
                                    &[("source", source_label)],
                                )
                                .inc();
                            let delay = policy.backoff.delay_micros(attempt, kind as u64);
                            if let Some(deadline) = fanout_deadline {
                                if after_call.saturating_add(delay) >= deadline {
                                    break 'attempts Err(self.budget_exhausted(source_label, kind));
                                }
                            }
                            clock.sleep_micros(delay);
                            last_err = Some(e);
                        } else {
                            if e.is_retriable() {
                                self.gave_up.fetch_add(1, Ordering::Relaxed);
                                self.telemetry
                                    .counter(
                                        "minaret_source_gave_up_total",
                                        &[("source", source_label)],
                                    )
                                    .inc();
                            }
                            break 'attempts Err(e);
                        }
                    }
                }
            }
            Err(last_err.expect("loop executes at least once"))
        };
        self.telemetry
            .histogram("minaret_source_call_micros", &[("source", source_label)])
            .observe(clock.now_micros().saturating_sub(started));
        (result, attempts)
    }

    /// Runs `run` under single-flight coalescing: the first caller for a
    /// given `(source, key)` becomes the **leader** and computes the
    /// result; callers arriving while it is in flight become
    /// **followers**, wait on the leader's cell, and clone its result —
    /// no second source call, no second breaker/retry/budget charge. The
    /// cell is removed once the leader publishes, so later fan-outs (a
    /// cache-miss retry, a changed world) compute fresh.
    ///
    /// The leader publishes even if `run` panics (the panic is converted
    /// into the same per-source `Internal` error the fan-out job layer
    /// would report), so followers can never be stranded on a dead cell.
    fn coalesced_call<T: Clone + Send + 'static>(
        &self,
        key: (SourceKind, u64),
        source_label: &str,
        run: impl FnOnce() -> (Result<T, SourceError>, u32),
    ) -> (Result<T, SourceError>, u32) {
        struct Cell<T> {
            done: Mutex<Option<(Result<T, SourceError>, u32)>>,
            cv: Condvar,
        }
        // Leader election is the sharded map's exactly-one-winner
        // `get_or_insert_with`: the inserting caller leads, everyone
        // who found the cell follows. Keys on other shards elect their
        // leaders concurrently.
        let (cell, leader) = self.inflight.get_or_insert_with(key, || {
            Arc::new(Cell::<T> {
                done: Mutex::new(None),
                cv: Condvar::new(),
            })
        });
        let cell = cell
            .downcast::<Cell<T>>()
            .expect("one result type per coalescing key");
        if leader {
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(run));
            let result = match outcome {
                Ok(r) => r,
                Err(payload) => (Err(panic_to_error(key.0, payload)), 0),
            };
            *cell.done.lock() = Some(result.clone());
            cell.cv.notify_all();
            self.inflight.remove(&key);
            result
        } else {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            self.telemetry
                .counter(
                    "minaret_fanout_coalesced_total",
                    &[("source", source_label)],
                )
                .inc();
            let mut done = cell.done.lock();
            while done.is_none() {
                cell.cv.wait(&mut done);
            }
            done.as_ref().expect("filled before notify").clone()
        }
    }

    /// One source's slice of a fan-out: the full resilience policy,
    /// optionally shared with concurrent identical fan-outs via
    /// single-flight coalescing (`coalesce` carries the fan-out key).
    fn policed_call<T: Clone + Send + 'static>(
        &self,
        entry: &SourceEntry,
        fanout_deadline: Option<u64>,
        coalesce: Option<u64>,
        call: &(dyn Fn(&dyn ScholarSource) -> Result<T, SourceError> + Send + Sync),
    ) -> (Result<T, SourceError>, u32) {
        match coalesce {
            None => self.call_with_policy(entry, fanout_deadline, || guarded_call(entry, call)),
            Some(key) => self.coalesced_call((entry.kind, key), entry.kind.prefix(), || {
                self.call_with_policy(entry, fanout_deadline, || guarded_call(entry, call))
            }),
        }
    }

    /// Builds (and counts) a budget-exhaustion error for `kind`.
    fn budget_exhausted(&self, source_label: &str, kind: SourceKind) -> SourceError {
        self.gave_up.fetch_add(1, Ordering::Relaxed);
        self.telemetry
            .counter(
                "minaret_source_budget_exhausted_total",
                &[("source", source_label)],
            )
            .inc();
        let err = SourceError::BudgetExhausted { source: kind };
        self.note_error(source_label, &err);
        err
    }

    /// Counts one error occurrence by class.
    fn note_error(&self, source_label: &str, error: &SourceError) {
        let class = match error {
            SourceError::Transient { .. } => "transient",
            SourceError::RateLimited { .. } => "rate_limited",
            SourceError::NotFound { .. } => "not_found",
            SourceError::Unsupported { .. } => "unsupported",
            SourceError::DeadlineExceeded { .. } => "deadline",
            SourceError::BudgetExhausted { .. } => "budget",
            SourceError::CircuitOpen { .. } => "circuit_open",
            SourceError::Internal { .. } => "internal",
        };
        self.telemetry
            .counter(
                "minaret_source_errors_total",
                &[("source", source_label), ("kind", class)],
            )
            .inc();
    }
}

/// The single-flight identity of a batched interest fan-out: an FNV-1a
/// hash of the **sorted, deduplicated, normalized** label set, so two
/// concurrent fan-outs asking the same question — regardless of label
/// order or raw spelling — share one in-flight computation per source.
fn batch_fanout_key(labels: &[String]) -> u64 {
    let mut normalized: Vec<Arc<str>> = labels.iter().map(|l| intern::normalized(l)).collect();
    normalized.sort();
    normalized.dedup();
    let mut h: u64 = 0xcbf29ce484222325;
    for label in &normalized {
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        // Separator fold so ["ab","c"] and ["a","bc"] differ.
        h ^= 0x1f;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Converts a caught panic payload into a per-source error. The breaker
/// records the failure downstream in `call_with_policy` (an `Internal`
/// error is a service fault), so a source that keeps panicking trips its
/// breaker exactly like one that keeps erroring.
fn panic_to_error(kind: SourceKind, payload: Box<dyn std::any::Any + Send>) -> SourceError {
    let detail = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "source thread panicked".to_string());
    SourceError::Internal {
        source: kind,
        detail,
    }
}

/// Runs a source call with panic containment: a panicking source
/// implementation becomes a per-source [`SourceError::Internal`] and the
/// (persistent) worker thread survives to serve the next job.
fn guarded_call<T>(
    entry: &SourceEntry,
    call: &(dyn Fn(&dyn ScholarSource) -> Result<T, SourceError> + Send + Sync),
) -> Result<T, SourceError> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| call(entry.source.as_ref()))) {
        Ok(result) => result,
        Err(payload) => Err(panic_to_error(entry.kind, payload)),
    }
}

/// A unit of fan-out work shipped to a pool worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The per-fan-out source call, shared across every pool job it spawns.
type SharedCall<T> = Arc<dyn Fn(&dyn ScholarSource) -> Result<T, SourceError> + Send + Sync>;

/// How many shared overflow workers drain spill from busy per-source
/// workers. Bounds cross-fan-out parallelism at `sources + OVERFLOW`.
const OVERFLOW_WORKERS: usize = 4;

struct PoolWorker {
    tx: channel::Sender<Job>,
    /// 0 = idle; 1 = a job is queued or running on the affinity queue.
    busy: Arc<AtomicU64>,
}

/// The persistent worker pool: one long-lived thread per source known at
/// spawn time, plus [`OVERFLOW_WORKERS`] shared threads. Spawned lazily
/// on the first concurrent fan-out (sequential registries never pay for
/// threads) and shut down when the registry drops.
struct WorkerPool {
    workers: Vec<PoolWorker>,
    overflow_tx: Option<channel::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(per_source: usize) -> Self {
        let mut workers = Vec::with_capacity(per_source);
        let mut handles = Vec::new();
        let run = |job: Job| {
            // Belt to `guarded_call`'s braces: nothing a job does may
            // kill its worker.
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job));
        };
        for i in 0..per_source {
            let (tx, rx) = channel::unbounded::<Job>();
            let busy = Arc::new(AtomicU64::new(0));
            let worker_busy = busy.clone();
            let handle = std::thread::Builder::new()
                .name(format!("minaret-source-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        run(job);
                        worker_busy.store(0, Ordering::Release);
                    }
                })
                .expect("spawn source worker");
            handles.push(handle);
            workers.push(PoolWorker { tx, busy });
        }
        let (overflow_tx, overflow_rx) = channel::unbounded::<Job>();
        for i in 0..OVERFLOW_WORKERS {
            let rx = overflow_rx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("minaret-overflow-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        run(job);
                    }
                })
                .expect("spawn overflow worker");
            handles.push(handle);
        }
        Self {
            workers,
            overflow_tx: Some(overflow_tx),
            handles,
        }
    }

    /// Routes a job: the source's own worker when idle, the shared
    /// overflow queue when busy (so one slow source never serializes
    /// unrelated fan-outs behind it), inline as a last resort during
    /// shutdown races.
    fn enqueue(&self, index: usize, job: Job) {
        if let Some(worker) = self.workers.get(index) {
            if worker
                .busy
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                match worker.tx.send(job) {
                    Ok(()) => return,
                    Err(channel::SendError(job)) => {
                        worker.busy.store(0, Ordering::Release);
                        return self.send_overflow(job);
                    }
                }
            }
        }
        self.send_overflow(job);
    }

    fn send_overflow(&self, job: Job) {
        let Some(tx) = &self.overflow_tx else {
            job();
            return;
        };
        // A disconnected overflow queue (pool mid-drop) degrades to
        // inline execution rather than losing the reply.
        if let Err(channel::SendError(job)) = tx.send(job) {
            job();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping every sender disconnects the channels; workers drain
        // their queues and exit. Join for a clean shutdown.
        self.workers.clear();
        self.overflow_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One slot per source: `None` when `applies` skipped it, otherwise the
/// call result plus the attempt count.
type Slot<T> = Option<(Result<T, SourceError>, u32)>;

/// The set of scholarly sources MINARET queries, with uniform fan-out.
///
/// The registry mirrors the paper's design: six sources today, but
/// "flexibly designed to include any further information from any
/// additional scholarly resource" — `register` accepts anything
/// implementing [`ScholarSource`].
pub struct SourceRegistry {
    shared: Arc<RegistryShared>,
    /// Absolute deadline (clock micros) bounding every fan-out issued
    /// through this handle, on top of the per-fan-out budget. Set by
    /// [`SourceRegistry::scoped_with_budget`]; `None` on the root handle.
    request_deadline_micros: Option<u64>,
}

impl std::fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SourceRegistry")
            .field("sources", &self.kinds())
            .finish()
    }
}

impl SourceRegistry {
    /// Creates an empty registry without telemetry.
    pub fn new(config: RegistryConfig) -> Self {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Creates an empty registry reporting per-source request, retry,
    /// error, timeout, short-circuit, breaker-state, pool-queue-depth,
    /// batch-size and latency series to `telemetry`.
    pub fn with_telemetry(config: RegistryConfig, telemetry: Telemetry) -> Self {
        Self {
            shared: Arc::new(RegistryShared {
                config,
                telemetry,
                clock: RwLock::new(Arc::new(SystemClock::new())),
                sources: RwLock::new(Vec::new()),
                calls: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                gave_up: AtomicU64::new(0),
                timed_out: AtomicU64::new(0),
                short_circuited: AtomicU64::new(0),
                queue_depth: AtomicU64::new(0),
                pool: OnceLock::new(),
                inflight: ShardedMap::new(),
                coalesced: AtomicU64::new(0),
            }),
            request_deadline_micros: None,
        }
    }

    /// A view of this registry whose fan-outs are additionally bounded
    /// by `budget_micros` from now — the serving layer's per-request
    /// deadline threaded down into source calls. The view shares
    /// everything (sources, breakers, counters, worker pool, coalescing)
    /// with the root handle; only the deadline differs. A fan-out issued
    /// through the view uses the **tighter** of the configured fan-out
    /// budget and the remaining request budget.
    pub fn scoped_with_budget(&self, budget_micros: u64) -> SourceRegistry {
        SourceRegistry {
            shared: Arc::clone(&self.shared),
            request_deadline_micros: Some(
                self.shared
                    .clock()
                    .now_micros()
                    .saturating_add(budget_micros),
            ),
        }
    }

    /// Replaces the clock used for deadlines, backoff pauses, and
    /// breaker cooldowns (share one [`crate::SimulatedClock`] with
    /// scripted sources for deterministic tests).
    pub fn with_clock(self, clock: Arc<dyn Clock>) -> Self {
        *self.shared.clock.write() = clock;
        self
    }

    /// Adds a source (and its circuit breaker). Sources registered after
    /// the first concurrent fan-out still work — their jobs run on the
    /// shared overflow workers instead of a dedicated thread.
    pub fn register(&mut self, source: Arc<dyn ScholarSource>) {
        let kind = source.kind();
        let breaker = Arc::new(CircuitBreaker::new(self.shared.config.resilience.breaker));
        self.shared
            .note_breaker_state(kind.prefix(), BreakerState::Closed);
        // Touch the coalescing counter so scrapes see the series (at 0)
        // from registration time, like the breaker gauge below.
        self.shared.telemetry.counter(
            "minaret_fanout_coalesced_total",
            &[("source", kind.prefix())],
        );
        self.shared.sources.write().push(SourceEntry {
            source,
            breaker,
            kind,
        });
    }

    /// The registered source kinds, in registration order.
    pub fn kinds(&self) -> Vec<SourceKind> {
        self.shared.sources.read().iter().map(|e| e.kind).collect()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.shared.sources.read().len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.shared.sources.read().is_empty()
    }

    /// Call counters so far.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            calls: self.shared.calls.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            gave_up: self.shared.gave_up.load(Ordering::Relaxed),
            timed_out: self.shared.timed_out.load(Ordering::Relaxed),
            short_circuited: self.shared.short_circuited.load(Ordering::Relaxed),
        }
    }

    /// The current breaker state of `kind`'s source, or `None` when no
    /// such source is registered. Reading rolls open → half-open if the
    /// cooldown has elapsed.
    pub fn breaker_state(&self, kind: SourceKind) -> Option<BreakerState> {
        let sources = self.shared.sources.read();
        let entry = sources.iter().find(|e| e.kind == kind)?;
        Some(entry.breaker.state(self.shared.clock().now_micros()))
    }

    /// The worker pool, spawned on first use with one worker per source
    /// registered at that moment.
    fn pool(&self) -> &WorkerPool {
        self.shared
            .pool
            .get_or_init(|| WorkerPool::spawn(self.shared.sources.read().len()))
    }

    /// Fans a query out to every source and collects per-source slots in
    /// registration order. Sources for which `applies` is false are
    /// skipped without a call.
    ///
    /// Per-source failures (after retries) are per-source results, not
    /// fatal — a scraper that loses one site still recommends from the
    /// other five. That includes a source whose implementation panics:
    /// the panic is caught around the call and converted into a
    /// per-source [`SourceError::Internal`], so the siblings still merge
    /// and the pool worker survives.
    /// `coalesce` opts the fan-out into single-flight sharing: fan-outs
    /// carrying the same key that overlap in time charge each source one
    /// policed call and share the result (see
    /// [`RegistryShared::coalesced_call`]).
    fn fan_out<T, A, C>(
        &self,
        applies: A,
        call: C,
        coalesce: Option<u64>,
    ) -> Vec<(SourceKind, Slot<T>)>
    where
        T: Clone + Send + 'static,
        A: Fn(&dyn ScholarSource) -> bool,
        C: Fn(&dyn ScholarSource) -> Result<T, SourceError> + Send + Sync + 'static,
    {
        let shared = &self.shared;
        let budget = shared.config.resilience.fanout_budget_micros;
        let config_deadline =
            (budget > 0).then(|| shared.clock().now_micros().saturating_add(budget));
        // A scoped handle's request deadline clamps the fan-out budget:
        // whichever expires first governs the calls.
        let fanout_deadline = match (config_deadline, self.request_deadline_micros) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let entries: Vec<SourceEntry> = shared.sources.read().clone();
        let applicable: Vec<bool> = entries.iter().map(|e| applies(e.source.as_ref())).collect();
        let mut slots: Vec<(SourceKind, Slot<T>)> =
            entries.iter().map(|e| (e.kind, None)).collect();

        if !shared.config.concurrent {
            for (i, entry) in entries.iter().enumerate() {
                if applicable[i] {
                    slots[i].1 = Some(shared.policed_call(entry, fanout_deadline, coalesce, &call));
                }
            }
            return slots;
        }

        let pool = self.pool();
        let call: SharedCall<T> = Arc::new(call);
        let (reply_tx, reply_rx) = channel::unbounded::<(usize, (Result<T, SourceError>, u32))>();
        let mut expected = 0usize;
        for (i, entry) in entries.iter().enumerate() {
            if !applicable[i] {
                continue;
            }
            expected += 1;
            let shared = Arc::clone(shared);
            let entry = entry.clone();
            let call = Arc::clone(&call);
            let reply_tx = reply_tx.clone();
            shared.note_enqueue();
            pool.enqueue(
                i,
                Box::new(move || {
                    shared.note_dequeue();
                    let result =
                        shared.policed_call(&entry, fanout_deadline, coalesce, call.as_ref());
                    let _ = reply_tx.send((i, result));
                }),
            );
        }
        drop(reply_tx);
        let mut received = 0usize;
        while received < expected {
            match reply_rx.recv() {
                Ok((i, result)) => {
                    slots[i].1 = Some(result);
                    received += 1;
                }
                // All job-held senders dropped before every reply landed:
                // a job died without replying. Mark the stragglers failed
                // rather than hanging or mislabelling them as skipped.
                Err(_) => break,
            }
        }
        if received < expected {
            for (i, slot) in slots.iter_mut().enumerate() {
                if applicable[i] && slot.1.is_none() {
                    slot.1 = Some((
                        Err(SourceError::Internal {
                            source: slot.0,
                            detail: "source worker disappeared mid-fan-out".to_string(),
                        }),
                        0,
                    ));
                }
            }
        }
        slots
    }

    /// Folds fan-out slots into the merged-profile report shape.
    fn collect_profile_report(
        slots: Vec<(SourceKind, Slot<Vec<Arc<SourceProfile>>>)>,
    ) -> FanOutReport {
        let mut profiles = Vec::new();
        let mut outcomes = Vec::new();
        for (kind, slot) in slots {
            let outcome = match slot {
                None => SourceOutcome {
                    source: kind,
                    status: SourceStatus::Skipped,
                    attempts: 0,
                },
                Some((Ok(mut v), attempts)) => {
                    profiles.append(&mut v);
                    SourceOutcome {
                        source: kind,
                        status: SourceStatus::Ok,
                        attempts,
                    }
                }
                Some((Err(e), attempts)) => SourceOutcome {
                    source: kind,
                    status: SourceStatus::Failed(e),
                    attempts,
                },
            };
            outcomes.push(outcome);
        }
        FanOutReport { profiles, outcomes }
    }

    /// Searches all sources by scholar name, with per-source outcomes.
    pub fn search_by_name_report(&self, name: &str) -> FanOutReport {
        let clock = self.shared.clock();
        let started = clock.now_micros();
        let name = name.to_string();
        let report = Self::collect_profile_report(self.fan_out(
            |_| true,
            move |s| s.search_by_name(&name),
            None,
        ));
        self.shared
            .telemetry
            .histogram("minaret_fanout_micros", &[("query", "name")])
            .observe(clock.now_micros().saturating_sub(started));
        report
    }

    /// Searches all sources by scholar name (legacy tuple view).
    pub fn search_by_name(&self, name: &str) -> (Vec<Arc<SourceProfile>>, Vec<SourceError>) {
        let report = self.search_by_name_report(name);
        let errors = report.errors();
        (report.profiles, errors)
    }

    /// Searches all interest-capable sources by research-interest
    /// keyword, with per-source outcomes; incapable sources are marked
    /// [`SourceStatus::Skipped`] (their absence is expected, not an
    /// error condition).
    pub fn search_by_interest_report(&self, keyword: &str) -> FanOutReport {
        let clock = self.shared.clock();
        let started = clock.now_micros();
        let keyword = keyword.to_string();
        let report = Self::collect_profile_report(self.fan_out(
            |s| s.supports_interest_search(),
            move |s| s.search_by_interest(&keyword),
            None,
        ));
        self.shared
            .telemetry
            .histogram("minaret_fanout_micros", &[("query", "interest")])
            .observe(clock.now_micros().saturating_sub(started));
        report
    }

    /// Searches all interest-capable sources (legacy tuple view).
    pub fn search_by_interest(&self, keyword: &str) -> (Vec<Arc<SourceProfile>>, Vec<SourceError>) {
        let report = self.search_by_interest_report(keyword);
        let errors = report.errors();
        (report.profiles, errors)
    }

    /// Issues the whole label set as **one batched fan-out**: every
    /// interest-capable source receives one
    /// [`ScholarSource::search_by_interests`] call carrying all labels,
    /// under one application of the resilience policy (deadline, budget,
    /// breaker, retries). This is the per-`recommend()` retrieval path —
    /// one fan-out regardless of how many labels expansion produced,
    /// where the per-label API would pay `labels × sources` policed
    /// calls and as many fan-out latencies.
    pub fn search_by_interests_report(&self, labels: &[String]) -> BatchFanOutReport {
        let clock = self.shared.clock();
        let started = clock.now_micros();
        self.shared
            .telemetry
            .histogram("minaret_batch_labels", &[])
            .observe(labels.len() as u64);
        // Intern once per fan-out: the batch travels as shared `Arc<str>`s
        // through the worker pool, every source, any cache layer, and back
        // out in the report — zero label-string allocations past this
        // point on a warm interner.
        let query: Vec<Arc<str>> = labels.iter().map(|l| intern::intern(l)).collect();
        let key = batch_fanout_key(labels);
        let call_query = query.clone();
        let slots = self.fan_out(
            |s| s.supports_interest_search(),
            move |s| s.search_by_interests(&call_query),
            Some(key),
        );
        // Exact label match first (the usual case: the echo *is* the
        // caller's Arc). A coalesced follower whose raw spelling differs
        // from the leader's still maps correctly via the normalized form,
        // since sources answer labels up to normalization anyway.
        let index_of: HashMap<&str, usize> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.as_str(), i))
            .collect();
        let index_of_norm: HashMap<Arc<str>, usize> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (intern::normalized(l), i))
            .collect();
        let mut by_label: Vec<(Arc<str>, Vec<Arc<SourceProfile>>)> =
            query.iter().map(|l| (l.clone(), Vec::new())).collect();
        let mut outcomes = Vec::new();
        for (kind, slot) in slots {
            let outcome = match slot {
                None => SourceOutcome {
                    source: kind,
                    status: SourceStatus::Skipped,
                    attempts: 0,
                },
                Some((Ok(pairs), attempts)) => {
                    for (label, mut hits) in pairs {
                        let slot = index_of
                            .get(label.as_ref())
                            .or_else(|| index_of_norm.get(&intern::normalized(&label)))
                            .copied();
                        if let Some(i) = slot {
                            by_label[i].1.append(&mut hits);
                        }
                    }
                    SourceOutcome {
                        source: kind,
                        status: SourceStatus::Ok,
                        attempts,
                    }
                }
                Some((Err(e), attempts)) => SourceOutcome {
                    source: kind,
                    status: SourceStatus::Failed(e),
                    attempts,
                },
            };
            outcomes.push(outcome);
        }
        self.shared
            .telemetry
            .histogram("minaret_fanout_micros", &[("query", "interest_batch")])
            .observe(clock.now_micros().saturating_sub(started));
        BatchFanOutReport { by_label, outcomes }
    }

    /// Fan-out slices answered by coalescing onto another caller's
    /// in-flight identical fan-out (see `minaret_fanout_coalesced_total`).
    pub fn coalesced_count(&self) -> u64 {
        self.shared.coalesced.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimulatedClock;
    use crate::resilience::BreakerConfig;
    use crate::sim::{FaultSchedule, SimulatedSource};
    use crate::spec::SourceSpec;
    use minaret_synth::{World, WorldConfig, WorldGenerator};

    fn world() -> Arc<World> {
        Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 150,
                ..Default::default()
            })
            .generate(),
        )
    }

    fn full_registry(world: &Arc<World>, concurrent: bool) -> SourceRegistry {
        let mut reg = SourceRegistry::new(RegistryConfig {
            concurrent,
            ..Default::default()
        });
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        reg
    }

    #[test]
    fn registry_lists_all_six_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        assert_eq!(reg.len(), 6);
        assert_eq!(reg.kinds().len(), 6);
        assert!(!reg.is_empty());
    }

    #[test]
    fn name_fan_out_merges_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        let name = w.scholars()[0].full_name();
        let (profiles, errors) = reg.search_by_name(&name);
        assert!(errors.is_empty());
        // The scholar is covered by several sources, so multiple profiles
        // with the same truth id come back.
        let truth_hits = profiles
            .iter()
            .filter(|p| p.truth == w.scholars()[0].id)
            .count();
        assert!(
            truth_hits >= 2,
            "only {truth_hits} sources returned the scholar"
        );
    }

    #[test]
    fn concurrent_and_sequential_agree() {
        let w = world();
        let reg_c = full_registry(&w, true);
        let reg_s = full_registry(&w, false);
        let name = w.scholars()[5].full_name();
        let (mut a, _) = reg_c.search_by_name(&name);
        let (mut b, _) = reg_s.search_by_name(&name);
        let key = |p: &Arc<SourceProfile>| (p.source, p.key.clone());
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
    }

    #[test]
    fn interest_search_skips_unsupporting_sources() {
        let w = world();
        let reg = full_registry(&w, true);
        let label = w.ontology.label(w.scholars()[0].interests[0]);
        let report = reg.search_by_interest_report(label);
        assert!(report.errors().is_empty());
        // Only GS and Publons support interest search.
        for p in &report.profiles {
            assert!(matches!(
                p.source,
                SourceKind::GoogleScholar | SourceKind::Publons
            ));
        }
        // The incapable sources are marked skipped, not failed — being
        // asked a question you don't support is not ill health.
        for o in &report.outcomes {
            match o.source {
                SourceKind::GoogleScholar | SourceKind::Publons => {
                    assert_eq!(o.status, SourceStatus::Ok, "{:?}", o.source);
                    assert!(o.attempts >= 1);
                }
                _ => {
                    assert_eq!(o.status, SourceStatus::Skipped, "{:?}", o.source);
                    assert_eq!(o.attempts, 0);
                }
            }
        }
    }

    #[test]
    fn batched_interest_fanout_answers_every_label_in_order() {
        let w = world();
        let reg = full_registry(&w, true);
        let mut labels: Vec<String> = w
            .scholars()
            .iter()
            .take(5)
            .map(|s| w.ontology.label(s.interests[0]).to_string())
            .collect();
        labels.dedup();
        labels.push("no such research topic".to_string());
        let report = reg.search_by_interests_report(&labels);
        assert_eq!(report.by_label.len(), labels.len());
        for ((got, hits), want) in report.by_label.iter().zip(&labels) {
            assert_eq!(
                got.as_ref(),
                want.as_str(),
                "label order must match the input"
            );
            for p in hits {
                assert!(matches!(
                    p.source,
                    SourceKind::GoogleScholar | SourceKind::Publons
                ));
            }
        }
        assert!(report.by_label.last().unwrap().1.is_empty());
        // Each interest-capable source paid exactly one call for the
        // whole batch; the rest were skipped.
        for o in &report.outcomes {
            match o.source {
                SourceKind::GoogleScholar | SourceKind::Publons => {
                    assert_eq!(o.status, SourceStatus::Ok);
                    assert_eq!(
                        o.attempts, 1,
                        "{:?} must answer the batch in one call",
                        o.source
                    );
                }
                _ => assert_eq!(o.status, SourceStatus::Skipped),
            }
        }
        assert_eq!(reg.stats().calls, 2, "one call per capable source");
    }

    #[test]
    fn batched_fanout_matches_per_label_fanouts() {
        let w = world();
        let reg_batched = full_registry(&w, true);
        let reg_loop = full_registry(&w, false);
        let labels: Vec<String> = w
            .scholars()
            .iter()
            .take(8)
            .map(|s| w.ontology.label(s.interests[0]).to_string())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let batch = reg_batched.search_by_interests_report(&labels);
        for (label, hits) in &batch.by_label {
            let single = reg_loop.search_by_interest_report(label);
            assert_eq!(
                hits, &single.profiles,
                "batched hits for {label} diverge from the per-label fan-out"
            );
        }
    }

    #[test]
    fn batched_fanout_fails_the_whole_batch_for_a_dead_source() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            ..Default::default()
        });
        let mut gs = SourceSpec::for_kind(SourceKind::GoogleScholar);
        gs.latency_micros = 0;
        reg.register(Arc::new(
            SimulatedSource::new(gs, w.clone()).with_fault(FaultSchedule::PermanentOutage),
        ));
        let mut pb = SourceSpec::for_kind(SourceKind::Publons);
        pb.latency_micros = 0;
        reg.register(Arc::new(SimulatedSource::new(pb, w.clone())));
        let labels: Vec<String> = (0..40).map(|i| format!("label {i}")).collect();
        let report = reg.search_by_interests_report(&labels);
        // One outcome per source — not one per label — so a dead source
        // produces exactly one error for the whole 40-label batch.
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.errors().len(), 1);
        assert!(matches!(
            report.outcomes[0].status,
            SourceStatus::Failed(SourceError::Transient { .. })
        ));
        assert_eq!(report.outcomes[1].status, SourceStatus::Ok);
    }

    #[test]
    fn pool_queue_depth_returns_to_zero_and_batch_size_is_observed() {
        let w = world();
        let telemetry = minaret_telemetry::Telemetry::new();
        let mut reg = SourceRegistry::with_telemetry(RegistryConfig::default(), telemetry.clone());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        }
        let labels: Vec<String> = (0..7).map(|i| format!("label {i}")).collect();
        let _ = reg.search_by_interests_report(&labels);
        let _ = reg.search_by_name_report(&w.scholars()[0].full_name());
        let text = telemetry.encode_prometheus();
        // Every enqueued job was dequeued before its reply landed, so
        // after the fan-outs the gauge is back at zero.
        assert!(
            text.contains("minaret_pool_queue_depth 0"),
            "queue depth must drain: {text}"
        );
        assert!(
            text.contains("minaret_batch_labels_count 1"),
            "batch size histogram must record the batched fan-out: {text}"
        );
        assert!(
            text.contains("minaret_fanout_micros_count{query=\"interest_batch\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn pool_workers_survive_a_panicking_source_across_fanouts() {
        struct PanickingSource;
        impl ScholarSource for PanickingSource {
            fn kind(&self) -> SourceKind {
                SourceKind::Orcid
            }
            fn supports_interest_search(&self) -> bool {
                false
            }
            fn search_by_name(&self, _name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
                panic!("scripted pool panic");
            }
            fn search_by_interest(
                &self,
                _keyword: &str,
            ) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
                Err(SourceError::Unsupported {
                    source: SourceKind::Orcid,
                    operation: "interest search",
                })
            }
            fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
                Err(SourceError::NotFound {
                    source: SourceKind::Orcid,
                    key: key.to_string(),
                })
            }
        }
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        reg.register(Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(SourceKind::Dblp),
            w.clone(),
        )));
        reg.register(Arc::new(PanickingSource));
        let name = w.scholars()[0].full_name();
        // The same long-lived worker serves every fan-out; three panics
        // in a row must each be contained and the healthy sibling must
        // keep answering.
        for round in 0..3 {
            let report = reg.search_by_name_report(&name);
            let dblp = report
                .outcomes
                .iter()
                .find(|o| o.source == SourceKind::Dblp)
                .unwrap();
            assert_eq!(dblp.status, SourceStatus::Ok, "round {round}");
            let dead = report
                .outcomes
                .iter()
                .find(|o| o.source == SourceKind::Orcid)
                .unwrap();
            match &dead.status {
                SourceStatus::Failed(SourceError::Internal { detail, .. }) => {
                    assert!(detail.contains("scripted pool panic"), "{detail}");
                }
                other => panic!("round {round}: expected internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn retries_absorb_transient_failures() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 6,
            concurrent: false,
            ..Default::default()
        });
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 0.4;
        reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        let mut failures = 0;
        for i in 0..30 {
            let name = w.scholars()[i].full_name();
            let (_, errors) = reg.search_by_name(&name);
            failures += errors.len();
        }
        // 0.4^7 per call chain — all calls should eventually succeed.
        assert_eq!(failures, 0);
        let stats = reg.stats();
        assert!(stats.retries > 0, "expected some retries to occur");
        assert!(stats.calls > 30);
    }

    #[test]
    fn telemetry_tracks_per_source_requests_and_retries() {
        let w = world();
        let telemetry = minaret_telemetry::Telemetry::new();
        let mut reg = SourceRegistry::with_telemetry(
            RegistryConfig {
                max_retries: 6,
                concurrent: false,
                ..Default::default()
            },
            telemetry.clone(),
        );
        let mut gs = SourceSpec::for_kind(SourceKind::GoogleScholar);
        gs.failure_rate = 0.4;
        reg.register(Arc::new(SimulatedSource::new(gs, w.clone())));
        reg.register(Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(SourceKind::Dblp),
            w.clone(),
        )));
        for i in 0..20 {
            let _ = reg.search_by_name(&w.scholars()[i].full_name());
        }
        let stats = reg.stats();
        let text = telemetry.encode_prometheus();
        // Telemetry and legacy counters must agree.
        let gs_reqs = telemetry
            .counter("minaret_source_requests_total", &[("source", "gs")])
            .get();
        let dblp_reqs = telemetry
            .counter("minaret_source_requests_total", &[("source", "dblp")])
            .get();
        assert_eq!(gs_reqs + dblp_reqs, stats.calls);
        assert_eq!(dblp_reqs, 20, "DBLP never fails, one call per query");
        assert!(
            text.contains("minaret_source_retries_total{source=\"gs\"}"),
            "{text}"
        );
        assert!(
            text.contains("minaret_source_errors_total{kind=\"transient\",source=\"gs\"}"),
            "{text}"
        );
        assert!(
            text.contains("minaret_source_call_micros_count{source=\"dblp\"} 20"),
            "{text}"
        );
        assert!(
            text.contains("minaret_fanout_micros_count{query=\"name\"} 20"),
            "{text}"
        );
        // The breaker gauge is published from registration time so that
        // scrapes see every source even before any traffic.
        assert!(
            text.contains("minaret_breaker_state{source=\"dblp\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn exhausted_retries_surface_as_errors() {
        let w = world();
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            concurrent: false,
            ..Default::default()
        });
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 1.0;
        reg.register(Arc::new(SimulatedSource::new(spec, w.clone())));
        let (profiles, errors) = reg.search_by_name("anyone");
        assert!(profiles.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(reg.stats().gave_up >= 1);
    }

    #[test]
    fn breaker_trips_and_short_circuits_a_dead_source() {
        let w = world();
        let clock = SimulatedClock::new();
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.latency_micros = 0;
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            concurrent: false,
            resilience: ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 3,
                    cooldown_micros: 1_000_000,
                    probe_successes: 1,
                },
                ..ResilienceConfig::disabled()
            },
        })
        .with_clock(clock.clone());
        reg.register(Arc::new(
            SimulatedSource::new(spec, w.clone())
                .with_fault(FaultSchedule::PermanentOutage)
                .with_clock(clock.clone()),
        ));
        // Two fan-outs x two attempts = 4 consecutive failures >= 3.
        let _ = reg.search_by_name("a");
        let _ = reg.search_by_name("b");
        assert_eq!(
            reg.breaker_state(SourceKind::GoogleScholar),
            Some(BreakerState::Open)
        );
        // The third fan-out is rejected without touching the source.
        let calls_before = reg.stats().calls;
        let report = reg.search_by_name_report("c");
        assert_eq!(reg.stats().calls, calls_before);
        assert!(reg.stats().short_circuited >= 1);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(
            report.outcomes[0].status,
            SourceStatus::Failed(SourceError::CircuitOpen {
                source: SourceKind::GoogleScholar
            })
        );
        assert_eq!(report.outcomes[0].attempts, 0);
    }

    #[test]
    fn slow_source_times_out_against_call_deadline() {
        let w = world();
        let clock = SimulatedClock::new();
        let mut spec = SourceSpec::for_kind(SourceKind::Dblp);
        spec.latency_micros = 0;
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 0,
            concurrent: false,
            resilience: ResilienceConfig {
                call_deadline_micros: 10_000,
                ..ResilienceConfig::disabled()
            },
        })
        .with_clock(clock.clone());
        reg.register(Arc::new(
            SimulatedSource::new(spec, w.clone())
                .with_fault(FaultSchedule::Slow {
                    latency_micros: 50_000,
                })
                .with_clock(clock.clone()),
        ));
        let report = reg.search_by_name_report(&w.scholars()[0].full_name());
        assert_eq!(
            report.outcomes[0].status,
            SourceStatus::Failed(SourceError::DeadlineExceeded {
                source: SourceKind::Dblp
            })
        );
        assert_eq!(reg.stats().timed_out, 1);
    }

    /// A source whose batched interest search blocks until released,
    /// making concurrent fan-outs overlap deterministically (no sleeps).
    struct GatedSource {
        inner: SimulatedSource,
        release: Arc<(Mutex<bool>, Condvar)>,
        inner_calls: Arc<AtomicU64>,
    }

    impl GatedSource {
        fn wait_for_release(&self) {
            let (flag, cv) = &*self.release;
            let mut open = flag.lock();
            while !*open {
                cv.wait(&mut open);
            }
        }
    }

    impl ScholarSource for GatedSource {
        fn kind(&self) -> SourceKind {
            self.inner.kind()
        }
        fn supports_interest_search(&self) -> bool {
            true
        }
        fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
            self.inner.search_by_name(name)
        }
        fn search_by_interest(
            &self,
            keyword: &str,
        ) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
            self.inner.search_by_interest(keyword)
        }
        fn search_by_interests(
            &self,
            labels: &[Arc<str>],
        ) -> Result<crate::sim::LabeledHits, SourceError> {
            self.inner_calls.fetch_add(1, Ordering::Relaxed);
            self.wait_for_release();
            self.inner.search_by_interests(labels)
        }
        fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
            self.inner.fetch_profile(key)
        }
    }

    fn open_gate(release: &Arc<(Mutex<bool>, Condvar)>) {
        let (flag, cv) = &**release;
        *flag.lock() = true;
        cv.notify_all();
    }

    #[test]
    fn concurrent_identical_fanouts_coalesce_onto_one_leader() {
        let w = world();
        let telemetry = Telemetry::new();
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let inner_calls = Arc::new(AtomicU64::new(0));
        let mut reg = SourceRegistry::with_telemetry(RegistryConfig::default(), telemetry.clone());
        reg.register(Arc::new(GatedSource {
            inner: SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone()),
            release: release.clone(),
            inner_calls: inner_calls.clone(),
        }));
        let reg = Arc::new(reg);
        let labels: Vec<String> = w
            .scholars()
            .iter()
            .take(2)
            .map(|s| w.ontology.label(s.interests[0]).to_string())
            .collect();
        // 1 leader + 3 followers: followers park on overflow workers
        // while the leader holds the source's affinity worker.
        const N: usize = 4;
        let mut handles = Vec::new();
        for _ in 0..N {
            let reg = reg.clone();
            let labels = labels.clone();
            handles.push(std::thread::spawn(move || {
                reg.search_by_interests_report(&labels)
            }));
        }
        // The leader is parked on the gate; wait until every follower
        // has registered against its in-flight cell, then release.
        while reg.coalesced_count() < (N - 1) as u64 {
            std::thread::yield_now();
        }
        open_gate(&release);
        let reports: Vec<BatchFanOutReport> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The source answered exactly once for all N fan-outs, and the
        // policy layer charged exactly one call.
        assert_eq!(inner_calls.load(Ordering::Relaxed), 1);
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(reg.coalesced_count(), (N - 1) as u64);
        // Followers received clones of the leader result: same labels,
        // same profiles, same outcomes.
        for r in &reports[1..] {
            assert_eq!(r.by_label, reports[0].by_label);
            assert_eq!(r.outcomes, reports[0].outcomes);
        }
        assert!(reports[0].by_label.iter().any(|(_, hits)| !hits.is_empty()));
        let text = telemetry.encode_prometheus();
        assert!(
            text.contains("minaret_fanout_coalesced_total{source=\"gs\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn a_coalesced_failure_charges_the_breaker_once() {
        let w = world();
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let inner_calls = Arc::new(AtomicU64::new(0));
        // max_retries 1 → one failing policy run records 2 breaker
        // failures. Threshold 8 would trip only if all four fan-outs
        // each ran the policy (4 × 2 = 8); a coalesced run must not.
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 1,
            resilience: ResilienceConfig {
                breaker: BreakerConfig {
                    failure_threshold: 8,
                    cooldown_micros: 60_000_000,
                    probe_successes: 1,
                },
                ..ResilienceConfig::disabled()
            },
            ..Default::default()
        });
        reg.register(Arc::new(GatedSource {
            inner: SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone())
                .with_fault(FaultSchedule::PermanentOutage),
            release: release.clone(),
            inner_calls: inner_calls.clone(),
        }));
        let reg = Arc::new(reg);
        let labels = vec!["databases".to_string()];
        const N: usize = 4;
        let mut handles = Vec::new();
        for _ in 0..N {
            let reg = reg.clone();
            let labels = labels.clone();
            handles.push(std::thread::spawn(move || {
                reg.search_by_interests_report(&labels)
            }));
        }
        while reg.coalesced_count() < (N - 1) as u64 {
            std::thread::yield_now();
        }
        open_gate(&release);
        let reports: Vec<BatchFanOutReport> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // One policy run: 1 call + 1 retry, one give-up — shared by all.
        let stats = reg.stats();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.gave_up, 1);
        for r in &reports {
            assert!(matches!(r.outcomes[0].status, SourceStatus::Failed(_)));
        }
        // Two recorded failures, not eight: the breaker stays closed,
        // so the coalesced failure was charged exactly once.
        assert_eq!(
            reg.breaker_state(SourceKind::GoogleScholar),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn scoped_budget_clamps_fanouts_to_the_request_deadline() {
        let w = world();
        let clock = SimulatedClock::new();
        let mut spec = SourceSpec::for_kind(SourceKind::Dblp);
        spec.latency_micros = 1_000;
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 0,
            concurrent: false,
            resilience: ResilienceConfig::disabled(),
        })
        .with_clock(clock.clone());
        reg.register(Arc::new(
            SimulatedSource::new(spec, w.clone()).with_clock(clock.clone()),
        ));
        let name = w.scholars()[0].full_name();
        // Root handle: no request deadline, the call succeeds.
        let report = reg.search_by_name_report(&name);
        assert_eq!(report.outcomes[0].status, SourceStatus::Ok);
        // A scoped view whose budget is already exhausted rejects the
        // call before touching the source.
        let calls_before = reg.stats().calls;
        let scoped = reg.scoped_with_budget(0);
        let report = scoped.search_by_name_report(&name);
        assert_eq!(
            report.outcomes[0].status,
            SourceStatus::Failed(SourceError::BudgetExhausted {
                source: SourceKind::Dblp
            })
        );
        assert_eq!(reg.stats().calls, calls_before, "no source call issued");
        // The scoped run charged the shared stats ledger.
        assert!(reg.stats().gave_up >= 1);
        // A generous budget behaves like the root handle.
        let scoped = reg.scoped_with_budget(10_000_000);
        let report = scoped.search_by_name_report(&name);
        assert_eq!(report.outcomes[0].status, SourceStatus::Ok);
    }

    #[test]
    fn coalescing_counter_is_exported_at_zero_from_registration() {
        let w = world();
        let telemetry = Telemetry::new();
        let mut reg = SourceRegistry::with_telemetry(RegistryConfig::default(), telemetry.clone());
        reg.register(Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(SourceKind::Dblp),
            w.clone(),
        )));
        // No fan-out has run, but scrapes must already see the series.
        let text = telemetry.encode_prometheus();
        assert!(
            text.contains("minaret_fanout_coalesced_total{source=\"dblp\"} 0"),
            "{text}"
        );
        assert_eq!(reg.coalesced_count(), 0);
    }

    /// A rendezvous barrier: every arriving call parks until `target`
    /// calls have arrived, then all proceed. Proves N calls were
    /// in-flight *simultaneously* — if anything serialized them, the
    /// earlier arrival would hold its lock forever waiting for the later
    /// one and the test would deadlock rather than flake.
    struct ArrivalGate {
        count: Mutex<usize>,
        cv: Condvar,
        target: usize,
    }

    impl ArrivalGate {
        fn new(target: usize) -> Self {
            Self {
                count: Mutex::new(0),
                cv: Condvar::new(),
                target,
            }
        }

        fn arrive_and_wait(&self) {
            let mut n = self.count.lock();
            *n += 1;
            self.cv.notify_all();
            while *n < self.target {
                self.cv.wait(&mut n);
            }
        }
    }

    /// A source whose batched interest search rendezvouses on an
    /// [`ArrivalGate`] before answering.
    struct RendezvousSource {
        inner: SimulatedSource,
        gate: Arc<ArrivalGate>,
        inner_calls: Arc<AtomicU64>,
    }

    impl ScholarSource for RendezvousSource {
        fn kind(&self) -> SourceKind {
            self.inner.kind()
        }
        fn supports_interest_search(&self) -> bool {
            true
        }
        fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
            self.inner.search_by_name(name)
        }
        fn search_by_interest(
            &self,
            keyword: &str,
        ) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
            self.inner.search_by_interest(keyword)
        }
        fn search_by_interests(
            &self,
            labels: &[Arc<str>],
        ) -> Result<crate::sim::LabeledHits, SourceError> {
            self.inner_calls.fetch_add(1, Ordering::Relaxed);
            self.gate.arrive_and_wait();
            self.inner.search_by_interests(labels)
        }
        fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
            self.inner.fetch_profile(key)
        }
    }

    /// Finds two single-label queries whose single-flight keys land on
    /// shards related by `pick` (same shard / different shards) of the
    /// registry's `inflight` map. Shard placement is a pure function of
    /// the key, so the search is deterministic.
    fn label_pair_by_shard(
        reg: &SourceRegistry,
        world: &World,
        pick: impl Fn(usize, usize) -> bool,
    ) -> (Vec<String>, Vec<String>) {
        let labels: Vec<String> = world.ontology.topics().map(|t| t.label.clone()).collect();
        let shard_of = |label: &String| {
            let key = (
                SourceKind::GoogleScholar,
                batch_fanout_key(std::slice::from_ref(label)),
            );
            reg.shared.inflight.shard_index(&key)
        };
        for a in &labels {
            for b in &labels {
                if a != b && pick(shard_of(a), shard_of(b)) {
                    return (vec![a.clone()], vec![b.clone()]);
                }
            }
        }
        panic!("no label pair satisfies the shard relation");
    }

    fn rendezvous_registry(
        w: &Arc<World>,
        gate: &Arc<ArrivalGate>,
        inner_calls: &Arc<AtomicU64>,
    ) -> Arc<SourceRegistry> {
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        reg.register(Arc::new(RendezvousSource {
            inner: SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone()),
            gate: gate.clone(),
            inner_calls: inner_calls.clone(),
        }));
        Arc::new(reg)
    }

    #[test]
    fn fanouts_on_different_shards_run_concurrently() {
        let w = world();
        let gate = Arc::new(ArrivalGate::new(2));
        let inner_calls = Arc::new(AtomicU64::new(0));
        let reg = rendezvous_registry(&w, &gate, &inner_calls);
        let (la, lb) = label_pair_by_shard(&reg, &w, |a, b| a != b);
        let (ra, rb) = {
            let (reg_a, reg_b) = (reg.clone(), reg.clone());
            let ha = std::thread::spawn(move || reg_a.search_by_interests_report(&la));
            let hb = std::thread::spawn(move || reg_b.search_by_interests_report(&lb));
            (ha.join().unwrap(), hb.join().unwrap())
        };
        // Both leaders were inside the source at once (the rendezvous
        // requires it); neither coalesced onto the other.
        assert_eq!(inner_calls.load(Ordering::Relaxed), 2);
        assert_eq!(reg.coalesced_count(), 0);
        assert_eq!(ra.outcomes[0].status, SourceStatus::Ok);
        assert_eq!(rb.outcomes[0].status, SourceStatus::Ok);
    }

    #[test]
    fn same_shard_distinct_fanouts_run_concurrently_without_coalescing() {
        // Two *different* questions that happen to share an inflight
        // shard must each get their own leader — the shard lock guards
        // leader election only, never the in-flight source call.
        let w = world();
        let gate = Arc::new(ArrivalGate::new(2));
        let inner_calls = Arc::new(AtomicU64::new(0));
        let reg = rendezvous_registry(&w, &gate, &inner_calls);
        let (la, lb) = label_pair_by_shard(&reg, &w, |a, b| a == b);
        let (ra, rb) = {
            let (reg_a, reg_b) = (reg.clone(), reg.clone());
            let ha = std::thread::spawn(move || reg_a.search_by_interests_report(&la));
            let hb = std::thread::spawn(move || reg_b.search_by_interests_report(&lb));
            (ha.join().unwrap(), hb.join().unwrap())
        };
        assert_eq!(inner_calls.load(Ordering::Relaxed), 2);
        assert_eq!(reg.coalesced_count(), 0);
        assert_eq!(ra.outcomes[0].status, SourceStatus::Ok);
        assert_eq!(rb.outcomes[0].status, SourceStatus::Ok);
        assert!(
            reg.shared.inflight.is_empty(),
            "cells removed after publish"
        );
    }

    #[test]
    fn a_panicking_leader_coalesces_to_errors_and_leaves_the_map_usable() {
        // Regression for the poisoning hazard: the inflight map used to
        // live behind a `std::sync::Mutex`, so a panic at the wrong
        // moment could poison it and every later fan-out would die in
        // `expect("inflight map poisoned")`. With parking_lot sharding,
        // a leader that panics mid-call yields `Internal` errors for its
        // followers and the *next* fan-out computes fresh.
        struct PanicOnceSource {
            release: Arc<(Mutex<bool>, Condvar)>,
            calls: Arc<AtomicU64>,
            inner: SimulatedSource,
        }
        impl ScholarSource for PanicOnceSource {
            fn kind(&self) -> SourceKind {
                self.inner.kind()
            }
            fn supports_interest_search(&self) -> bool {
                true
            }
            fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
                self.inner.search_by_name(name)
            }
            fn search_by_interest(
                &self,
                keyword: &str,
            ) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
                self.inner.search_by_interest(keyword)
            }
            fn search_by_interests(
                &self,
                labels: &[Arc<str>],
            ) -> Result<crate::sim::LabeledHits, SourceError> {
                if self.calls.fetch_add(1, Ordering::Relaxed) == 0 {
                    let (flag, cv) = &*self.release;
                    let mut open = flag.lock();
                    while !*open {
                        cv.wait(&mut open);
                    }
                    panic!("scripted leader panic");
                }
                self.inner.search_by_interests(labels)
            }
            fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
                self.inner.fetch_profile(key)
            }
        }
        let w = world();
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let calls = Arc::new(AtomicU64::new(0));
        let mut reg = SourceRegistry::new(RegistryConfig {
            max_retries: 0,
            ..Default::default()
        });
        reg.register(Arc::new(PanicOnceSource {
            release: release.clone(),
            calls: calls.clone(),
            inner: SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone()),
        }));
        let reg = Arc::new(reg);
        let labels = vec!["databases".to_string()];
        const N: usize = 3;
        let mut handles = Vec::new();
        for _ in 0..N {
            let reg = reg.clone();
            let labels = labels.clone();
            handles.push(std::thread::spawn(move || {
                reg.search_by_interests_report(&labels)
            }));
        }
        // Both followers are registered against the leader's cell before
        // the leader is allowed to panic.
        while reg.coalesced_count() < (N - 1) as u64 {
            std::thread::yield_now();
        }
        open_gate(&release);
        let reports: Vec<BatchFanOutReport> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &reports {
            match &r.outcomes[0].status {
                SourceStatus::Failed(SourceError::Internal { detail, .. }) => {
                    assert!(detail.contains("scripted leader panic"), "{detail}");
                }
                other => panic!("expected contained panic, got {other:?}"),
            }
        }
        // The cell was removed and the map is neither wedged nor
        // poisoned: a fresh fan-out elects a new leader and succeeds.
        assert!(reg.shared.inflight.is_empty());
        let retry = reg.search_by_interests_report(&labels);
        assert_eq!(retry.outcomes[0].status, SourceStatus::Ok);
        assert_eq!(calls.load(Ordering::Relaxed), 2, "one panic + one retry");
    }
}
