//! The record shapes sources return — the "scraped page" equivalents.

use minaret_synth::ScholarId;
use std::sync::Arc;

use crate::spec::SourceKind;

/// Citation metrics as exposed by metric-bearing sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceMetrics {
    /// Total citation count, if the source exposes it.
    pub citations: Option<u64>,
    /// h-index, if the source exposes it.
    pub h_index: Option<u32>,
    /// i10-index (papers with ≥ 10 citations), Google-Scholar-style.
    pub i10_index: Option<u32>,
}

/// One publication as listed on a profile page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourcePublication {
    /// Title string.
    pub title: String,
    /// Publication year.
    pub year: u32,
    /// Venue name string (not an id — sources expose text).
    pub venue_name: String,
    /// Co-author display names as printed on the page.
    pub coauthor_names: Vec<String>,
    /// Topic keywords attached to the publication, when the source
    /// exposes them.
    pub keywords: Vec<String>,
    /// Citation count of this publication, when exposed.
    pub citations: Option<u32>,
}

/// One review record (Publons-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceReview {
    /// Venue reviewed for, as text.
    pub venue_name: String,
    /// Year of the review.
    pub year: u32,
    /// Days from invitation to submitted review.
    pub turnaround_days: u32,
    /// Review quality (1–5 stars), when the source exposes it (Publons).
    pub quality: Option<u8>,
}

/// One entry of an affiliation history (ORCID-style).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffiliationRecord {
    /// Institution name as text.
    pub institution: String,
    /// Country of the institution.
    pub country: String,
    /// First year (inclusive).
    pub from_year: u32,
    /// Last year (inclusive).
    pub to_year: u32,
}

/// A scholar profile as returned by one source.
///
/// This is the unit the extraction phase works with: text fields, partial
/// lists, per-source keys — the shape of a scraped profile page.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceProfile {
    /// Which source produced this profile.
    pub source: SourceKind,
    /// Opaque per-source profile key (e.g. `"gs:1f3a"`). Stable across
    /// calls; different sources use unrelated keys for the same person.
    pub key: String,
    /// Display name as rendered by the source — may be abbreviated
    /// ("L. Zhou") depending on the source's name noise.
    pub display_name: String,
    /// Current affiliation as text, when known.
    pub affiliation: Option<String>,
    /// Country of the current affiliation, when known.
    pub country: Option<String>,
    /// Full affiliation history (ORCID exposes this; others leave it
    /// empty).
    pub affiliation_history: Vec<AffiliationRecord>,
    /// Research-interest keywords registered on the profile.
    pub interests: Vec<String>,
    /// Publications listed on the profile (subset of the truth).
    /// `Arc`-shared: merged candidates borrow these records instead of
    /// deep-copying title/venue/keyword strings every recommendation.
    pub publications: Vec<Arc<SourcePublication>>,
    /// Citation metrics, when the source exposes them.
    pub metrics: SourceMetrics,
    /// Review records, when the source exposes them (Publons).
    /// `Arc`-shared, like `publications`.
    pub reviews: Vec<Arc<SourceReview>>,
    /// Ground-truth identity of the scholar this profile belongs to.
    ///
    /// **Evaluation-only.** The recommendation framework never reads this
    /// field; it exists so `minaret-eval` can score disambiguation and
    /// ranking decisions against the truth. Real scraped pages obviously
    /// have no such label.
    pub truth: ScholarId,
}

impl SourceProfile {
    /// Number of review records on the profile.
    pub fn review_count(&self) -> u32 {
        self.reviews.len() as u32
    }

    /// Most recent publication year on the profile, if any.
    pub fn latest_publication_year(&self) -> Option<u32> {
        self.publications.iter().map(|p| p.year).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> SourceProfile {
        SourceProfile {
            source: SourceKind::GoogleScholar,
            key: "gs:1".into(),
            display_name: "Ada Lovelace".into(),
            affiliation: Some("University of Tartu".into()),
            country: Some("Estonia".into()),
            affiliation_history: vec![],
            interests: vec!["databases".into()],
            publications: vec![
                Arc::new(SourcePublication {
                    title: "A".into(),
                    year: 2015,
                    venue_name: "J".into(),
                    coauthor_names: vec![],
                    keywords: vec![],
                    citations: Some(4),
                }),
                Arc::new(SourcePublication {
                    title: "B".into(),
                    year: 2017,
                    venue_name: "J".into(),
                    coauthor_names: vec![],
                    keywords: vec![],
                    citations: None,
                }),
            ],
            metrics: SourceMetrics::default(),
            reviews: vec![Arc::new(SourceReview {
                venue_name: "J".into(),
                year: 2016,
                turnaround_days: 21,
                quality: Some(4),
            })],
            truth: ScholarId(0),
        }
    }

    #[test]
    fn helpers_summarize_profile() {
        let p = profile();
        assert_eq!(p.review_count(), 1);
        assert_eq!(p.latest_publication_year(), Some(2017));
    }

    #[test]
    fn empty_profile_has_no_latest_year() {
        let mut p = profile();
        p.publications.clear();
        assert_eq!(p.latest_publication_year(), None);
    }
}
