//! String interning for the extraction hot path.
//!
//! The pipeline shuttles the same small vocabulary of strings — topic
//! labels, normalized names, affiliations, merge keys — through every
//! fan-out, cache lookup, and merge bucket of every recommendation.
//! Interning maps each distinct string to one shared `Arc<str>` so the
//! warm path clones pointers instead of re-allocating the bytes, and
//! memoizes [`normalize_label`] so loops over interests and keywords pay
//! the lowercase/collapse work once per distinct input instead of once
//! per visit.
//!
//! The global interner never evicts: its vocabulary is bounded by the
//! distinct labels, names, and affiliations the world exposes, which is
//! exactly the working set a long-lived service wants resident. (Interned
//! `Arc<str>` addresses are therefore stable for the process lifetime,
//! which [`crate::merge`] relies on for its pointer-keyed merge-key
//! memo.)

use std::sync::{Arc, OnceLock};

use minaret_concurrent::{ConcurrentMap, ShardedMap};
use minaret_ontology::normalize_label;

/// A content-addressed store of shared strings plus a memo table for
/// normalized forms. Thread-safe; both tables are sharded
/// ([`ShardedMap`]), so a first-sight insert locks one shard of the
/// vocabulary instead of stalling every concurrent intern.
pub struct Interner {
    /// Keyed by the interned `Arc<str>` itself; the value is a clone of
    /// the same `Arc`, so every caller converges on one allocation.
    strings: ShardedMap<Arc<str>, Arc<str>>,
    /// raw input -> interned `normalize_label(raw)`.
    normalized: ShardedMap<Arc<str>, Arc<str>>,
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

impl Interner {
    /// Creates an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self {
            strings: ShardedMap::new(),
            normalized: ShardedMap::new(),
        }
    }

    /// The shared `Arc<str>` for `s`, allocating only on first sight
    /// (the warm path probes with `&str`, no allocation).
    pub fn intern(&self, s: &str) -> Arc<str> {
        if let Some(hit) = self.strings.get(s) {
            return hit;
        }
        let arc: Arc<str> = Arc::from(s);
        // Same-key racers converge on whichever Arc won the insert.
        self.strings
            .get_or_insert_with(arc.clone(), || arc.clone())
            .0
    }

    /// The interned [`normalize_label`] of `s`, memoized per distinct
    /// raw input: warm calls are two hash lookups and zero allocations.
    pub fn normalized(&self, s: &str) -> Arc<str> {
        if let Some(hit) = self.normalized.get(s) {
            return hit;
        }
        // Intern both forms *before* touching the memo shard: the memo's
        // `make` closure must not re-enter a map, and the normalized Arc
        // it captures is already pinned.
        let norm = self.intern(&normalize_label(s));
        let raw = self.intern(s);
        self.normalized.get_or_insert_with(raw, || norm.clone()).0
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

static GLOBAL: OnceLock<Interner> = OnceLock::new();

/// The process-wide interner every pipeline component shares.
#[must_use]
pub fn global() -> &'static Interner {
    GLOBAL.get_or_init(Interner::new)
}

/// Interns `s` in the [`global`] interner.
pub fn intern(s: &str) -> Arc<str> {
    global().intern(s)
}

/// Memoized, interned [`normalize_label`] via the [`global`] interner.
pub fn normalized(s: &str) -> Arc<str> {
    global().normalized(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_storage() {
        let i = Interner::new();
        let a = i.intern("semantic web");
        let b = i.intern("semantic web");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_strings_stay_distinct() {
        let i = Interner::new();
        let a = i.intern("semantic web");
        let b = i.intern("big data");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn normalized_matches_normalize_label_and_memoizes() {
        let i = Interner::new();
        let a = i.normalized("Big-Data");
        assert_eq!(a.as_ref(), normalize_label("Big-Data"));
        let b = i.normalized("Big-Data");
        assert!(Arc::ptr_eq(&a, &b));
        // A differently-spelled raw input converges on the same
        // normalized Arc.
        let c = i.normalized("big   data");
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn normalized_of_already_normal_input_is_shared() {
        let i = Interner::new();
        let raw = i.intern("big data");
        let norm = i.normalized("big data");
        assert!(Arc::ptr_eq(&raw, &norm));
    }

    #[test]
    fn global_interner_is_shared() {
        let a = intern("global-intern-probe");
        let b = intern("global-intern-probe");
        assert!(Arc::ptr_eq(&a, &b));
        let n = normalized("Global-Intern-Probe");
        assert_eq!(n.as_ref(), "global intern probe");
    }
}
