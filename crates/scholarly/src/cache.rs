//! Caching decorator over any [`ScholarSource`].
//!
//! The paper stresses that MINARET extracts information on-the-fly so the
//! recommendations are "dynamic and based on up-to-date information".
//! On-the-fly extraction is expensive; within one recommendation run the
//! same profile is needed by several phases, so a per-run cache is the
//! standard mitigation. Experiment E6 measures exactly what it buys.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::SourceError;
use crate::record::SourceProfile;
use crate::sim::ScholarSource;
use crate::spec::SourceKind;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to go to the underlying source.
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A read-through cache over a source.
///
/// Successful results are cached per query; errors are never cached, so a
/// transient failure retried later can still succeed.
pub struct CachingSource {
    inner: Arc<dyn ScholarSource>,
    by_name: RwLock<HashMap<String, Vec<SourceProfile>>>,
    by_interest: RwLock<HashMap<String, Vec<SourceProfile>>>,
    by_key: RwLock<HashMap<String, SourceProfile>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for CachingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingSource")
            .field("kind", &self.inner.kind())
            .field("stats", &self.stats())
            .finish()
    }
}

impl CachingSource {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: Arc<dyn ScholarSource>) -> Self {
        Self {
            inner,
            by_name: RwLock::new(HashMap::new()),
            by_interest: RwLock::new(HashMap::new()),
            by_key: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached entries (a new recommendation run starting from
    /// scratch, per the paper's freshness requirement).
    pub fn clear(&self) {
        self.by_name.write().clear();
        self.by_interest.write().clear();
        self.by_key.write().clear();
    }
}

impl ScholarSource for CachingSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }

    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }

    fn search_by_name(&self, name: &str) -> Result<Vec<SourceProfile>, SourceError> {
        if let Some(hit) = self.by_name.read().get(name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.search_by_name(name)?;
        self.by_name
            .write()
            .insert(name.to_string(), result.clone());
        Ok(result)
    }

    fn search_by_interest(&self, keyword: &str) -> Result<Vec<SourceProfile>, SourceError> {
        if let Some(hit) = self.by_interest.read().get(keyword) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.search_by_interest(keyword)?;
        self.by_interest
            .write()
            .insert(keyword.to_string(), result.clone());
        Ok(result)
    }

    fn fetch_profile(&self, key: &str) -> Result<SourceProfile, SourceError> {
        if let Some(hit) = self.by_key.read().get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.fetch_profile(key)?;
        self.by_key.write().insert(key.to_string(), result.clone());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimulatedSource;
    use crate::spec::SourceSpec;
    use minaret_synth::{WorldConfig, WorldGenerator};

    fn cached(kind: SourceKind) -> (CachingSource, Arc<minaret_synth::World>) {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 100,
                ..Default::default()
            })
            .generate(),
        );
        let src = Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(kind),
            world.clone(),
        ));
        (CachingSource::new(src), world)
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (c, w) = cached(SourceKind::GoogleScholar);
        let name = w.scholars()[0].full_name();
        let a = c.search_by_name(&name).unwrap();
        let b = c.search_by_name(&name).unwrap();
        assert_eq!(a, b);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clear_forces_refetch() {
        let (c, w) = cached(SourceKind::Dblp);
        let name = w.scholars()[1].full_name();
        c.search_by_name(&name).unwrap();
        c.clear();
        c.search_by_name(&name).unwrap();
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 50,
                ..Default::default()
            })
            .generate(),
        );
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 0.95;
        let src = Arc::new(SimulatedSource::new(spec, world));
        let c = CachingSource::new(src);
        // Keep retrying until one call succeeds; then the next identical
        // call must be a hit even though earlier ones failed.
        let mut ok = false;
        for _ in 0..200 {
            if c.search_by_name("anyone").is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "expected at least one success in 200 tries");
        let before = c.stats().hits;
        c.search_by_name("anyone").unwrap();
        assert_eq!(c.stats().hits, before + 1);
    }

    #[test]
    fn empty_stats_hit_ratio_is_zero() {
        let (c, _) = cached(SourceKind::Orcid);
        assert_eq!(c.stats().hit_ratio(), 0.0);
    }
}
