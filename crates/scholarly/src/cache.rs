//! Caching decorator over any [`ScholarSource`].
//!
//! The paper stresses that MINARET extracts information on-the-fly so the
//! recommendations are "dynamic and based on up-to-date information".
//! On-the-fly extraction is expensive; within one recommendation run the
//! same profile is needed by several phases, so a per-run cache is the
//! standard mitigation. Experiment E6 measures exactly what it buys.
//!
//! Entries are stored and returned as `Arc`-shared values: a cache hit is
//! a shallow clone of a `Vec<Arc<SourceProfile>>` (pointer bumps), never a
//! deep copy of the profiles themselves.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minaret_concurrent::{ConcurrentMap, ShardedMap};
use minaret_telemetry::Telemetry;

use crate::error::SourceError;
use crate::record::SourceProfile;
use crate::sim::ScholarSource;
use crate::spec::SourceKind;

/// Cache hit/miss/error/eviction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that went to the underlying source and succeeded
    /// (i.e. populated the cache). Failed fetch-throughs are counted in
    /// `errors`, not here — counting them as misses used to make the
    /// hit ratio drift downward on flaky sources even when every
    /// cacheable response was served from cache.
    pub misses: u64,
    /// Fetch-throughs that failed; nothing was cached.
    pub errors: u64,
    /// Entries dropped by [`CachingSource::clear`].
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; `0` when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A read-through cache over a source.
///
/// Successful results are cached per query; errors are never cached, so a
/// transient failure retried later can still succeed.
pub struct CachingSource {
    inner: Arc<dyn ScholarSource>,
    telemetry: Telemetry,
    by_name: ShardedMap<String, Vec<Arc<SourceProfile>>>,
    by_interest: ShardedMap<Arc<str>, Vec<Arc<SourceProfile>>>,
    by_key: ShardedMap<String, Arc<SourceProfile>>,
    hits: AtomicU64,
    misses: AtomicU64,
    errors: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for CachingSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingSource")
            .field("kind", &self.inner.kind())
            .field("stats", &self.stats())
            .finish()
    }
}

impl CachingSource {
    /// Wraps `inner` with an empty cache and no telemetry.
    #[must_use]
    pub fn new(inner: Arc<dyn ScholarSource>) -> Self {
        Self::with_telemetry(inner, Telemetry::disabled())
    }

    /// Wraps `inner` with an empty cache reporting
    /// `minaret_cache_{hits,misses,errors,evictions}_total{source=...}`
    /// to `telemetry`.
    #[must_use]
    pub fn with_telemetry(inner: Arc<dyn ScholarSource>, telemetry: Telemetry) -> Self {
        Self {
            inner,
            telemetry,
            by_name: ShardedMap::new(),
            by_interest: ShardedMap::new(),
            by_key: ShardedMap::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Current hit/miss/error/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops all cached entries (a new recommendation run starting from
    /// scratch, per the paper's freshness requirement).
    pub fn clear(&self) {
        let evicted =
            (self.by_name.clear() + self.by_interest.clear() + self.by_key.clear()) as u64;
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.cache_counter("evictions").inc_by(evicted);
    }

    fn cache_counter(&self, event: &str) -> minaret_telemetry::Counter {
        self.telemetry.counter(
            &format!("minaret_cache_{event}_total"),
            &[("source", self.inner.kind().prefix())],
        )
    }

    fn on_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.cache_counter("hits").inc();
    }

    /// Resolves a fetch-through: successes count as misses (the cache
    /// is now populated), failures as errors (nothing was cached).
    fn on_fetch<T>(&self, result: &Result<T, SourceError>) {
        match result {
            Ok(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.cache_counter("misses").inc();
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.cache_counter("errors").inc();
            }
        }
    }
}

impl ScholarSource for CachingSource {
    fn kind(&self) -> SourceKind {
        self.inner.kind()
    }

    fn supports_interest_search(&self) -> bool {
        self.inner.supports_interest_search()
    }

    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        if let Some(hit) = self.by_name.get(name) {
            self.on_hit();
            return Ok(hit);
        }
        let result = self.inner.search_by_name(name);
        self.on_fetch(&result);
        let result = result?;
        self.by_name.insert(name.to_string(), result.clone());
        Ok(result)
    }

    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        if let Some(hit) = self.by_interest.get(keyword) {
            self.on_hit();
            return Ok(hit);
        }
        let result = self.inner.search_by_interest(keyword);
        self.on_fetch(&result);
        let result = result?;
        self.by_interest
            .insert(crate::intern::intern(keyword), result.clone());
        Ok(result)
    }

    /// Per-label caching over the batched search: labels already cached
    /// (from earlier batches *or* single-label queries) are served from
    /// the cache, and only the missing ones go to the inner source — as
    /// one batch. Each cached label counts a hit, each fetched label a
    /// miss; a failed fetch-through counts one error and caches nothing,
    /// so a later retry can still succeed — and labels already cached
    /// before the failure stay cached.
    fn search_by_interests(
        &self,
        labels: &[Arc<str>],
    ) -> Result<crate::sim::LabeledHits, SourceError> {
        let mut results: Vec<Option<Vec<Arc<SourceProfile>>>> = Vec::with_capacity(labels.len());
        let mut missing: Vec<Arc<str>> = Vec::new();
        for label in labels {
            match self.by_interest.get(label.as_ref()) {
                Some(hit) => {
                    self.on_hit();
                    results.push(Some(hit));
                }
                None => {
                    missing.push(label.clone());
                    results.push(None);
                }
            }
        }
        if !missing.is_empty() {
            match self.inner.search_by_interests(&missing) {
                Ok(fetched) => {
                    let fetched_by_label: HashMap<Arc<str>, Vec<Arc<SourceProfile>>> =
                        fetched.into_iter().collect();
                    for (label, slot) in labels.iter().zip(results.iter_mut()) {
                        if slot.is_none() {
                            // get, not remove: a duplicated input label
                            // must resolve both occurrences.
                            let hits = fetched_by_label
                                .get(label.as_ref())
                                .cloned()
                                .unwrap_or_default();
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            self.cache_counter("misses").inc();
                            self.by_interest.insert(label.clone(), hits.clone());
                            *slot = Some(hits);
                        }
                    }
                }
                Err(e) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    self.cache_counter("errors").inc();
                    return Err(e);
                }
            }
        }
        Ok(labels
            .iter()
            .zip(results)
            .map(|(label, hits)| (label.clone(), hits.expect("every label resolved")))
            .collect())
    }

    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        if let Some(hit) = self.by_key.get(key) {
            self.on_hit();
            return Ok(hit);
        }
        let result = self.inner.fetch_profile(key);
        self.on_fetch(&result);
        let result = result?;
        self.by_key.insert(key.to_string(), result.clone());
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern;
    use crate::sim::SimulatedSource;
    use crate::spec::SourceSpec;
    use minaret_synth::{WorldConfig, WorldGenerator};

    fn cached(kind: SourceKind) -> (CachingSource, Arc<minaret_synth::World>) {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 100,
                ..Default::default()
            })
            .generate(),
        );
        let src = Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(kind),
            world.clone(),
        ));
        (CachingSource::new(src), world)
    }

    fn world_labels(w: &minaret_synth::World, n: usize) -> Vec<Arc<str>> {
        let mut labels: Vec<Arc<str>> = Vec::new();
        for s in w.scholars() {
            for &i in &s.interests {
                let label = intern::intern(w.ontology.label(i));
                if !labels.contains(&label) {
                    labels.push(label);
                }
                if labels.len() == n {
                    return labels;
                }
            }
        }
        labels
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (c, w) = cached(SourceKind::GoogleScholar);
        let name = w.scholars()[0].full_name();
        let a = c.search_by_name(&name).unwrap();
        let b = c.search_by_name(&name).unwrap();
        assert_eq!(a, b);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cache_hits_share_profile_allocations() {
        let (c, w) = cached(SourceKind::GoogleScholar);
        let name = w.scholars()[0].full_name();
        let a = c.search_by_name(&name).unwrap();
        let b = c.search_by_name(&name).unwrap();
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(
                Arc::ptr_eq(x, y),
                "a cache hit must be a shallow Arc clone, not a deep copy"
            );
        }
    }

    #[test]
    fn clear_forces_refetch() {
        let (c, w) = cached(SourceKind::Dblp);
        let name = w.scholars()[1].full_name();
        c.search_by_name(&name).unwrap();
        c.clear();
        c.search_by_name(&name).unwrap();
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 50,
                ..Default::default()
            })
            .generate(),
        );
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 0.95;
        let src = Arc::new(SimulatedSource::new(spec, world));
        let c = CachingSource::new(src);
        // Keep retrying until one call succeeds; then the next identical
        // call must be a hit even though earlier ones failed.
        let mut ok = false;
        for _ in 0..200 {
            if c.search_by_name("anyone").is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "expected at least one success in 200 tries");
        let before = c.stats().hits;
        c.search_by_name("anyone").unwrap();
        assert_eq!(c.stats().hits, before + 1);
    }

    #[test]
    fn batched_search_serves_cached_labels_and_fetches_the_rest() {
        let (c, w) = cached(SourceKind::GoogleScholar);
        let labels = world_labels(&w, 3);
        assert_eq!(labels.len(), 3);
        // Warm one label through the single-label path.
        let warm = c.search_by_interest(&labels[0]).unwrap();
        assert_eq!(c.stats().misses, 1);
        // The batch serves it from cache and fetches only the others.
        let batch = c.search_by_interests(&labels).unwrap();
        assert_eq!(batch.len(), labels.len());
        assert_eq!(batch[0].1, warm);
        let s = c.stats();
        assert_eq!(s.hits, 1, "the warmed label must be a hit");
        assert_eq!(s.misses as usize, labels.len(), "only missing labels fetch");
        // A repeat batch is now fully cached.
        let again = c.search_by_interests(&labels).unwrap();
        assert_eq!(again, batch);
        assert_eq!(c.stats().hits as usize, 1 + labels.len());
    }

    #[test]
    fn mixed_batch_preserves_input_order_and_counts_exactly() {
        let (c, w) = cached(SourceKind::GoogleScholar);
        let labels = world_labels(&w, 4);
        assert_eq!(labels.len(), 4);
        // Warm labels 1 and 3 so the batch interleaves hit/miss/hit/miss.
        c.search_by_interest(&labels[1]).unwrap();
        c.search_by_interest(&labels[3]).unwrap();
        let mixed = vec![
            labels[0].clone(),
            labels[1].clone(),
            labels[2].clone(),
            labels[3].clone(),
        ];
        let batch = c.search_by_interests(&mixed).unwrap();
        // Output order mirrors input order label-for-label, regardless of
        // which labels were served from cache.
        assert_eq!(batch.len(), mixed.len());
        for (got, want) in batch.iter().zip(mixed.iter()) {
            assert!(Arc::ptr_eq(&got.0, want), "labels echo in input order");
        }
        let s = c.stats();
        assert_eq!(s.hits, 2, "two pre-warmed labels hit");
        assert_eq!(s.misses, 2 + 2, "two warmups + two batch fetches");
        assert_eq!(s.errors, 0);
        // Cached hits are the same Arcs the single-label path returned.
        let single = c.search_by_interest(&labels[1]).unwrap();
        let batched = &batch[1].1;
        assert_eq!(&single, batched);
    }

    #[test]
    fn partial_miss_failure_leaves_cached_labels_intact() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 100,
                ..Default::default()
            })
            .generate(),
        );
        let labels = world_labels(&world, 2);
        assert_eq!(labels.len(), 2);
        let spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        // Alternating succeed/fail: call 0 succeeds, call 1 fails, ...
        let flaky = Arc::new(SimulatedSource::new(spec, world).with_fault(
            crate::sim::FaultSchedule::RateLimitBursts {
                allowed: 1,
                limited: 1,
            },
        ));
        let c = CachingSource::new(flaky);
        // Inner call 0 succeeds and caches label 0.
        let cached_hits = c.search_by_interest(&labels[0]).unwrap();
        // The batch hits label 0 in cache and fetches only label 1 —
        // inner call 1, which is scripted to fail.
        let before = c.stats();
        assert!(c.search_by_interests(&labels).is_err());
        let after = c.stats();
        assert_eq!(after.errors, before.errors + 1, "one error for the batch");
        assert_eq!(after.hits, before.hits + 1, "cached label still hits");
        assert_eq!(after.misses, before.misses, "failure caches nothing");
        // The previously cached label is still served from cache.
        let again = c.search_by_interest(&labels[0]).unwrap();
        assert_eq!(again, cached_hits);
        assert_eq!(c.stats().hits, after.hits + 1);
    }

    #[test]
    fn batched_search_failure_counts_one_error_and_caches_nothing() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 50,
                ..Default::default()
            })
            .generate(),
        );
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 1.0;
        let c = CachingSource::new(Arc::new(SimulatedSource::new(spec, world)));
        let labels = vec![intern::intern("databases"), intern::intern("data mining")];
        assert!(c.search_by_interests(&labels).is_err());
        let s = c.stats();
        assert_eq!(s.errors, 1, "one failed batch fetch-through = one error");
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn empty_stats_hit_ratio_is_zero() {
        let (c, _) = cached(SourceKind::Orcid);
        assert_eq!(c.stats().hit_ratio(), 0.0);
    }

    #[test]
    fn failed_fetches_count_as_errors_not_misses() {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 50,
                ..Default::default()
            })
            .generate(),
        );
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 1.0;
        let c = CachingSource::new(Arc::new(SimulatedSource::new(spec, world)));
        for _ in 0..5 {
            assert!(c.search_by_name("anyone").is_err());
        }
        let s = c.stats();
        assert_eq!(s.errors, 5);
        assert_eq!(s.misses, 0, "failed fetches must not count as misses");
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn clear_counts_evictions() {
        let (c, w) = cached(SourceKind::Dblp);
        c.search_by_name(&w.scholars()[0].full_name()).unwrap();
        c.search_by_name(&w.scholars()[1].full_name()).unwrap();
        c.clear();
        assert_eq!(c.stats().evictions, 2);
        c.clear();
        assert_eq!(
            c.stats().evictions,
            2,
            "clearing an empty cache evicts nothing"
        );
    }

    #[test]
    fn telemetry_mirrors_cache_counters() {
        let telemetry = minaret_telemetry::Telemetry::new();
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 100,
                ..Default::default()
            })
            .generate(),
        );
        let src = Arc::new(SimulatedSource::new(
            SourceSpec::for_kind(SourceKind::GoogleScholar),
            world.clone(),
        ));
        let c = CachingSource::with_telemetry(src, telemetry.clone());
        let name = world.scholars()[0].full_name();
        c.search_by_name(&name).unwrap();
        c.search_by_name(&name).unwrap();
        c.clear();
        let text = telemetry.encode_prometheus();
        assert!(
            text.contains("minaret_cache_hits_total{source=\"gs\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("minaret_cache_misses_total{source=\"gs\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("minaret_cache_evictions_total{source=\"gs\"} 1"),
            "{text}"
        );
    }
}
