//! The simulated source implementation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use minaret_ontology::normalize_label;
use minaret_synth::{LazyWorld, ScholarId, World, WorldHandle, WorldScope};
use minaret_telemetry::Telemetry;

use crate::intern;

use crate::clock::{Clock, SystemClock};
use crate::error::SourceError;
use crate::record::{
    AffiliationRecord, SourceMetrics, SourceProfile, SourcePublication, SourceReview,
};
use crate::spec::{SourceKind, SourceSpec};

/// Per-label hit lists from a batched interest search: each queried
/// label (echoed as the caller's interned `Arc<str>`) paired with its
/// possibly-empty, `Arc`-shared profile hits, in input order.
pub type LabeledHits = Vec<(Arc<str>, Vec<Arc<SourceProfile>>)>;

/// A scholarly data source, as the extraction phase sees it.
///
/// The paper's framework treats every scholarly website uniformly and is
/// "flexibly designed to include any further information from any
/// additional scholarly resource" — this trait is that extension seam.
/// All methods may fail transiently; callers are expected to retry
/// retriable errors (see [`crate::SourceRegistry`]).
pub trait ScholarSource: Send + Sync {
    /// Which service this is.
    fn kind(&self) -> SourceKind;

    /// Whether [`ScholarSource::search_by_interest`] is supported.
    fn supports_interest_search(&self) -> bool;

    /// Finds profiles whose display name matches `name` (normalized,
    /// both full names and abbreviated forms are matched the way the
    /// real sites do). Results are `Arc`-shared: a profile handed out
    /// twice is the same allocation, not a deep copy, so callers may
    /// hold hits from overlapping queries cheaply.
    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError>;

    /// Finds profiles that register `keyword` among their research
    /// interests — the paper queries Google Scholar and Publons this way
    /// to retrieve candidate reviewers (§2.1).
    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError>;

    /// Answers a whole label set in one call, returning the hits per
    /// label in input order. Retrieval is fundamentally a batched,
    /// index-backed operation; issuing the expanded keyword set as one
    /// request lets a source amortize its per-call cost across every
    /// label instead of paying it per keyword. Labels travel as interned
    /// `Arc<str>` so a batch echoed back (and cached, and re-batched)
    /// never re-allocates its label strings.
    ///
    /// The default implementation loops [`search_by_interest`] per label
    /// (propagating the first error), so third-party sources keep
    /// working unchanged; sources with an interest index should override
    /// it to pay their per-call cost once.
    ///
    /// [`search_by_interest`]: ScholarSource::search_by_interest
    fn search_by_interests(&self, labels: &[Arc<str>]) -> Result<LabeledHits, SourceError> {
        labels
            .iter()
            .map(|label| {
                self.search_by_interest(label)
                    .map(|hits| (label.clone(), hits))
            })
            .collect()
    }

    /// Fetches one profile by its per-source key.
    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError>;
}

/// A lazily-built, per-source store of [`Arc`]-shared profiles.
///
/// Building a [`SourceProfile`] clones institution names, publication
/// titles, coauthor names, and keyword lists out of the world — dozens
/// of allocations per profile. A source's view of a scholar is
/// deterministic, so the store builds each profile at most once (on
/// first request, lock-free via [`OnceLock`]) and every subsequent hit
/// anywhere — name search, interest search, key fetch — is one `Arc`
/// clone.
pub struct ProfileStore {
    slots: Vec<OnceLock<Arc<SourceProfile>>>,
    /// Growth path: profiles for [`ScholarId`]s beyond the fixed slot
    /// range (a world that grew after the store was sized) land in a
    /// sharded map instead of panicking on an out-of-range index.
    overflow: minaret_concurrent::ShardedMap<usize, Arc<SourceProfile>>,
    /// When set, slot initialization consults the embedded store first
    /// (decode hit → no rebuild) and persists freshly built profiles.
    backing: Option<ProfileBacking>,
}

struct ProfileBacking {
    store: Arc<minaret_store::Store>,
    kind: SourceKind,
}

impl ProfileStore {
    /// An empty store with one slot per scholar in the world.
    #[must_use]
    pub fn with_capacity(scholars: usize) -> Self {
        Self {
            slots: (0..scholars).map(|_| OnceLock::new()).collect(),
            overflow: minaret_concurrent::ShardedMap::new(),
            backing: None,
        }
    }

    /// A store whose slots lazily load from (and write back to) the
    /// embedded `store`, under keys namespaced by `kind`. Decode
    /// failures fall back to rebuilding — the persisted bytes are a
    /// cache of deterministic computation, never the source of truth.
    #[must_use]
    pub fn with_store(scholars: usize, store: Arc<minaret_store::Store>, kind: SourceKind) -> Self {
        Self {
            slots: (0..scholars).map(|_| OnceLock::new()).collect(),
            overflow: minaret_concurrent::ShardedMap::new(),
            backing: Some(ProfileBacking { store, kind }),
        }
    }

    /// The shared profile for `id`, building it via `build` exactly once
    /// across all threads (or loading it from the backing store, when
    /// one is attached and holds a decodable entry).
    pub fn get_or_build(
        &self,
        id: ScholarId,
        build: impl FnOnce() -> SourceProfile,
    ) -> Arc<SourceProfile> {
        match self.slots.get(id.index()) {
            Some(slot) => slot.get_or_init(|| self.materialize(id, build)).clone(),
            // Out-of-range ids take the sharded overflow path instead of
            // panicking; same build-at-most-once guarantee, enforced by
            // the shard lock rather than a `OnceLock`.
            None => {
                use minaret_concurrent::ConcurrentMap;
                self.overflow
                    .get_or_insert_with(id.index(), || self.materialize(id, build))
                    .0
            }
        }
    }

    fn materialize(
        &self,
        id: ScholarId,
        build: impl FnOnce() -> SourceProfile,
    ) -> Arc<SourceProfile> {
        if let Some(backing) = &self.backing {
            let key = crate::persist::profile_key(backing.kind, id);
            if let Ok(Some(bytes)) = backing.store.get(&key) {
                if let Ok(profile) = crate::persist::decode_profile(&bytes) {
                    return Arc::new(profile);
                }
            }
            let profile = build();
            // Best-effort write-back: a full disk must not take down the
            // serving path — the profile is still correct, just not
            // persisted.
            let _ = backing
                .store
                .put(&key, &crate::persist::encode_profile(&profile));
            return Arc::new(profile);
        }
        Arc::new(build())
    }

    /// How many profiles have been materialized so far.
    pub fn built_count(&self) -> usize {
        use minaret_concurrent::ConcurrentMap;
        self.slots.iter().filter(|s| s.get().is_some()).count() + self.overflow.len()
    }

    /// How many fixed (lock-free) slots the store was sized with. Ids
    /// beyond this take the sharded overflow path, so sizing from the
    /// actual world keeps the hot path `OnceLock`-only.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// True when a backing store is attached.
    pub fn is_persistent(&self) -> bool {
        self.backing.is_some()
    }
}

/// FNV-1a; all simulation noise is a pure function of hashed identifiers,
/// so a source's view of the world is stable across calls and runs.
fn hash64(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A scripted fault injected into a [`SimulatedSource`] — the
/// deterministic counterpart of `SourceSpec::failure_rate`'s dice.
///
/// Schedules are keyed off the source's own call counter and the
/// injected [`Clock`], so every breaker transition and backoff decision
/// downstream of them is exactly reproducible: no sleeps, no randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultSchedule {
    /// No scripted faults (spec-driven behaviour only).
    #[default]
    Healthy,
    /// The first `failures` calls fail transiently, then the source
    /// recovers for good.
    FailThenRecover {
        /// How many leading calls fail.
        failures: u64,
    },
    /// Every call fails transiently — a dead service.
    PermanentOutage,
    /// Every call succeeds but takes `latency_micros` of injected-clock
    /// time — a stalled-but-alive service for deadline tests.
    Slow {
        /// Fixed per-call latency on the injected clock.
        latency_micros: u64,
    },
    /// Repeating rate-limit bursts: `allowed` calls succeed, then
    /// `limited` calls are rejected with `RateLimited`, forever.
    RateLimitBursts {
        /// Calls admitted per window.
        allowed: u64,
        /// Calls rejected after the window fills.
        limited: u64,
    },
}

/// One simulated scholarly website over a shared world — eager
/// ([`World`]) or lazy ([`LazyWorld`], profiles materialized from the
/// embedded store on first touch).
pub struct SimulatedSource {
    spec: SourceSpec,
    world: WorldHandle,
    fault: FaultSchedule,
    clock: Arc<dyn Clock>,
    salt: u64,
    /// normalized full display name -> scholars covered by this source.
    name_index: HashMap<String, Vec<ScholarId>>,
    /// normalized interest keyword -> scholars registering it here.
    interest_index: HashMap<String, Vec<ScholarId>>,
    /// Memoized profiles: built on first hit, `Arc`-shared ever after.
    profiles: ProfileStore,
    calls: AtomicU64,
    rate_window_used: AtomicU64,
    /// Bumped each time a lazy world materializes a profile from the
    /// store (`minaret_profile_lazy_builds_total`); a no-op handle
    /// until [`Self::with_telemetry`].
    lazy_builds: minaret_telemetry::Counter,
}

impl std::fmt::Debug for SimulatedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedSource")
            .field("kind", &self.spec.kind)
            .field("names", &self.name_index.len())
            .finish()
    }
}

impl SimulatedSource {
    /// Builds the simulated source over a fully materialized world,
    /// precomputing its coverage and search indexes.
    pub fn new(spec: SourceSpec, world: Arc<World>) -> Self {
        Self::over(spec, WorldHandle::Eager(world))
    }

    /// Builds the simulated source over a lazy, store-backed world.
    /// Index construction reads only the compact per-scholar summaries
    /// (names and interest ids); full profiles are materialized from the
    /// store one community block at a time, on first touch. Serving is
    /// byte-identical to the eager path.
    pub fn lazy(spec: SourceSpec, world: Arc<LazyWorld>) -> Self {
        Self::over(spec, WorldHandle::Lazy(world))
    }

    /// Builds the simulated source over either world representation.
    pub fn over(spec: SourceSpec, world: WorldHandle) -> Self {
        let salt = hash64(&[spec.kind as u64 + 1, 0x5eed]);
        let mut name_index: HashMap<String, Vec<ScholarId>> = HashMap::new();
        let mut interest_index: HashMap<String, Vec<ScholarId>> = HashMap::new();
        // Index construction touches only summary data (id, name parts,
        // interest ids) — both world representations serve it without
        // materializing a single profile, which is what keeps a
        // 10^6-scholar cold start at index-build cost.
        world.for_each_summary(|id, given, family, interests| {
            if !Self::covered_static(salt, spec.coverage, id) {
                return;
            }
            let display = Self::display_name_parts(salt, &spec, id, given, family);
            name_index
                .entry(normalize_label(&display))
                .or_default()
                .push(id);
            // Also index under the unabbreviated name — sites match both.
            let full = normalize_label(&format!("{given} {family}"));
            let entry = name_index.entry(full).or_default();
            if !entry.contains(&id) {
                entry.push(id);
            }
            if spec.has_interests {
                for (i, &t) in interests.iter().enumerate() {
                    // Each interest survives onto the profile with p=0.85.
                    let keep = unit(hash64(&[salt, 0x1a7e, id.0 as u64, i as u64])) < 0.85;
                    if keep {
                        let label = normalize_label(world.ontology().label(t));
                        interest_index.entry(label).or_default().push(id);
                    }
                }
            }
        });
        let profiles = ProfileStore::with_capacity(world.scholar_count());
        Self {
            spec,
            world,
            fault: FaultSchedule::default(),
            clock: Arc::new(SystemClock::new()),
            salt,
            name_index,
            interest_index,
            profiles,
            calls: AtomicU64::new(0),
            rate_window_used: AtomicU64::new(0),
            lazy_builds: Telemetry::disabled().counter("minaret_profile_lazy_builds_total", &[]),
        }
    }

    /// Scripts a deterministic fault schedule onto this source.
    pub fn with_fault(mut self, fault: FaultSchedule) -> Self {
        self.fault = fault;
        self
    }

    /// Replaces the clock the source pays latency against (share one
    /// [`crate::SimulatedClock`] with the registry for deterministic
    /// deadline tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    /// Backs this source's profile cache with an embedded store:
    /// profiles already persisted there are loaded instead of rebuilt,
    /// and freshly built ones are written back. Serving behaviour is
    /// byte-identical either way — profile construction is
    /// deterministic and the codec round-trips exactly.
    pub fn with_persistence(mut self, store: Arc<minaret_store::Store>) -> Self {
        self.profiles = ProfileStore::with_store(self.world.scholar_count(), store, self.spec.kind);
        self
    }

    /// Registers this source's metrics with `telemetry` — currently the
    /// `minaret_profile_lazy_builds_total` counter, labelled by source.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.lazy_builds = telemetry.counter(
            "minaret_profile_lazy_builds_total",
            &[("source", self.spec.kind.prefix())],
        );
        self
    }

    /// The source's simulation parameters.
    pub fn spec(&self) -> &SourceSpec {
        &self.spec
    }

    /// The scripted fault schedule, if any.
    pub fn fault(&self) -> FaultSchedule {
        self.fault
    }

    /// Number of scholars this source covers.
    pub fn covered_count(&self) -> usize {
        (0..self.world.scholar_count())
            .filter(|&i| Self::covered_static(self.salt, self.spec.coverage, ScholarId(i as u32)))
            .count()
    }

    fn covered_static(salt: u64, coverage: f64, id: ScholarId) -> bool {
        unit(hash64(&[salt, 0xc0ffee, id.0 as u64])) < coverage
    }

    fn display_name_parts(
        salt: u64,
        spec: &SourceSpec,
        id: ScholarId,
        given: &str,
        family: &str,
    ) -> String {
        if unit(hash64(&[salt, 0x4a3e, id.0 as u64])) < spec.name_noise {
            let initial = given.chars().next().unwrap_or('?');
            format!("{initial}. {family}")
        } else {
            format!("{given} {family}")
        }
    }

    /// The per-source key for a scholar — an opaque, source-specific id.
    pub fn key_for(&self, id: ScholarId) -> String {
        let obfuscated = hash64(&[self.salt, 0x6b, id.0 as u64]) & 0xffff_ffff;
        format!("{}:{obfuscated:08x}-{}", self.spec.kind.prefix(), id.0)
    }

    fn scholar_from_key(&self, key: &str) -> Option<ScholarId> {
        let rest = key
            .strip_prefix(self.spec.kind.prefix())?
            .strip_prefix(':')?;
        let (hash_part, idx) = rest.split_once('-')?;
        let id = ScholarId(idx.parse().ok()?);
        if id.index() >= self.world.scholar_count() {
            return None;
        }
        let expect = hash64(&[self.salt, 0x6b, id.0 as u64]) & 0xffff_ffff;
        if u64::from_str_radix(hash_part, 16).ok()? != expect {
            return None;
        }
        Some(id)
    }

    /// Simulates per-call cost and failure; every public operation calls
    /// this exactly once. Scripted faults ([`FaultSchedule`]) are applied
    /// first — they are deterministic in the call sequence number — then
    /// the spec's probabilistic failure model.
    fn pay_call(&self) -> Result<(), SourceError> {
        if self.spec.latency_micros > 0 {
            self.clock.sleep_micros(self.spec.latency_micros);
        }
        let seq = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.fault {
            FaultSchedule::Healthy => {}
            FaultSchedule::FailThenRecover { failures } => {
                if seq < failures {
                    return Err(SourceError::Transient {
                        source: self.spec.kind,
                    });
                }
            }
            FaultSchedule::PermanentOutage => {
                return Err(SourceError::Transient {
                    source: self.spec.kind,
                });
            }
            FaultSchedule::Slow { latency_micros } => {
                self.clock.sleep_micros(latency_micros);
            }
            FaultSchedule::RateLimitBursts { allowed, limited } => {
                let window = allowed.saturating_add(limited).max(1);
                if seq % window >= allowed {
                    return Err(SourceError::RateLimited {
                        source: self.spec.kind,
                    });
                }
            }
        }
        if self.spec.rate_limit > 0 {
            let used = self.rate_window_used.fetch_add(1, Ordering::Relaxed);
            if used >= self.spec.rate_limit as u64 {
                // One rejection, then the window resets — a compressed
                // model of "back off and the limiter forgives you".
                self.rate_window_used.store(0, Ordering::Relaxed);
                return Err(SourceError::RateLimited {
                    source: self.spec.kind,
                });
            }
        }
        if self.spec.failure_rate > 0.0
            && unit(hash64(&[self.salt, 0xfa11, seq])) < self.spec.failure_rate
        {
            return Err(SourceError::Transient {
                source: self.spec.kind,
            });
        }
        Ok(())
    }

    /// One result page over an index slice: profiles for at most
    /// `max_hits` matches. Index entries are appended in scholar-id
    /// order, so the page is the deterministic first-K — and its size
    /// is what keeps search cost flat in the world size.
    fn page(&self, ids: &[ScholarId]) -> Vec<Arc<SourceProfile>> {
        let cap = match self.spec.max_hits {
            0 => ids.len(),
            cap => cap,
        };
        ids.iter().take(cap).map(|&id| self.profile(id)).collect()
    }

    /// The shared profile for `id`: built once via [`Self::build_profile`]
    /// on first request, an `Arc` clone ever after. Lazy worlds resolve
    /// the build against `id`'s community block (one cached point read);
    /// a store failure there is unrecoverable for a local embedded store
    /// and panics rather than serving a wrong profile.
    fn profile(&self, id: ScholarId) -> Arc<SourceProfile> {
        self.profiles.get_or_build(id, || {
            if self.world.is_lazy() {
                self.lazy_builds.inc();
            }
            self.world
                .try_scope(id, |scope| self.build_profile(scope, id))
                .expect("embedded world store failed while materializing a profile")
        })
    }

    /// Builds the profile a page fetch would return for `id`. The same
    /// code serves both world representations through [`WorldScope`],
    /// which is what makes lazy profiles byte-identical to eager ones.
    fn build_profile(&self, w: &dyn WorldScope, id: ScholarId) -> SourceProfile {
        let s = w.scholar(id);
        let spec = &self.spec;
        let display_name =
            Self::display_name_parts(self.salt, spec, id, &s.given_name, &s.family_name);

        let current_inst = w.institution(s.current_affiliation());
        let (affiliation, country) = (
            Some(current_inst.name.clone()),
            Some(current_inst.country.clone()),
        );
        let affiliation_history = if spec.has_affiliation_history {
            s.affiliations
                .iter()
                .map(|a| {
                    let inst = w.institution(a.institution);
                    AffiliationRecord {
                        institution: inst.name.clone(),
                        country: inst.country.clone(),
                        from_year: a.from_year,
                        to_year: a.to_year,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        let interests = if spec.has_interests {
            s.interests
                .iter()
                .enumerate()
                .filter(|(i, _)| unit(hash64(&[self.salt, 0x1a7e, id.0 as u64, *i as u64])) < 0.85)
                .map(|(_, &t)| w.ontology().label(t).to_string())
                .collect()
        } else {
            Vec::new()
        };

        let mut publications = Vec::new();
        for p in w.papers_of(id) {
            if unit(hash64(&[self.salt, 0x9a9e2, p.id.0 as u64])) >= spec.publication_coverage {
                continue;
            }
            publications.push(Arc::new(SourcePublication {
                title: p.title.clone(),
                year: p.year,
                venue_name: w.venue(p.venue).name.clone(),
                coauthor_names: p
                    .authors
                    .iter()
                    .filter(|&&a| a != id)
                    .map(|&a| w.scholar(a).full_name())
                    .collect(),
                keywords: p
                    .topics
                    .iter()
                    .map(|&t| w.ontology().label(t).to_string())
                    .collect(),
                citations: if spec.has_metrics {
                    Some(p.citations)
                } else {
                    None
                },
            }));
        }

        let metrics = if spec.has_metrics {
            // Metrics reflect what *this source* indexes, like real sites.
            let mut cites: Vec<u32> = publications
                .iter()
                .map(|p| p.citations.unwrap_or(0))
                .collect();
            cites.sort_unstable_by(|a, b| b.cmp(a));
            let h = cites
                .iter()
                .enumerate()
                .take_while(|(rank, &c)| c as usize > *rank)
                .count() as u32;
            SourceMetrics {
                citations: Some(cites.iter().map(|&c| c as u64).sum()),
                h_index: Some(h),
                i10_index: Some(cites.iter().filter(|&&c| c >= 10).count() as u32),
            }
        } else {
            SourceMetrics::default()
        };

        let reviews = if spec.has_reviews {
            w.reviews_of(id)
                .into_iter()
                .map(|r| {
                    Arc::new(SourceReview {
                        venue_name: w.venue(r.venue).name.clone(),
                        year: r.year,
                        turnaround_days: r.turnaround_days,
                        quality: Some(r.quality),
                    })
                })
                .collect()
        } else {
            Vec::new()
        };

        SourceProfile {
            source: spec.kind,
            key: self.key_for(id),
            display_name,
            affiliation,
            country,
            affiliation_history,
            interests,
            publications,
            metrics,
            reviews,
            truth: id,
        }
    }
}

impl ScholarSource for SimulatedSource {
    fn kind(&self) -> SourceKind {
        self.spec.kind
    }

    fn supports_interest_search(&self) -> bool {
        self.spec.supports_interest_search
    }

    fn search_by_name(&self, name: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        self.pay_call()?;
        let needle = intern::normalized(name);
        // Iterate the index slice in place — no per-lookup id-vector
        // clone — and hand out memoized profiles, one page's worth.
        let hits = match self.name_index.get(needle.as_ref()) {
            Some(ids) => self.page(ids),
            None => Vec::new(),
        };
        Ok(hits)
    }

    fn search_by_interest(&self, keyword: &str) -> Result<Vec<Arc<SourceProfile>>, SourceError> {
        if !self.spec.supports_interest_search {
            return Err(SourceError::Unsupported {
                source: self.spec.kind,
                operation: "search by research interest",
            });
        }
        self.pay_call()?;
        let needle = intern::normalized(keyword);
        let hits = match self.interest_index.get(needle.as_ref()) {
            Some(ids) => self.page(ids),
            None => Vec::new(),
        };
        Ok(hits)
    }

    /// One `pay_call` answers the whole batch: the interest index is
    /// precomputed, so per-label lookups are free once the (simulated)
    /// request cost is paid. This is the batched-retrieval win the
    /// per-label default cannot express. Echoed labels are the caller's
    /// own interned `Arc<str>`s — no string clone per label — and
    /// normalization is memoized across the loop.
    fn search_by_interests(&self, labels: &[Arc<str>]) -> Result<LabeledHits, SourceError> {
        if !self.spec.supports_interest_search {
            return Err(SourceError::Unsupported {
                source: self.spec.kind,
                operation: "search by research interest",
            });
        }
        self.pay_call()?;
        Ok(labels
            .iter()
            .map(|label| {
                let needle = intern::normalized(label);
                let hits = match self.interest_index.get(needle.as_ref()) {
                    Some(ids) => self.page(ids),
                    None => Vec::new(),
                };
                (label.clone(), hits)
            })
            .collect())
    }

    fn fetch_profile(&self, key: &str) -> Result<Arc<SourceProfile>, SourceError> {
        self.pay_call()?;
        let id = self
            .scholar_from_key(key)
            .ok_or_else(|| SourceError::NotFound {
                source: self.spec.kind,
                key: key.to_string(),
            })?;
        if !Self::covered_static(self.salt, self.spec.coverage, id) {
            return Err(SourceError::NotFound {
                source: self.spec.kind,
                key: key.to_string(),
            });
        }
        Ok(self.profile(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_synth::{WorldConfig, WorldGenerator};

    fn world() -> Arc<World> {
        Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 200,
                ..Default::default()
            })
            .generate(),
        )
    }

    fn source(kind: SourceKind) -> SimulatedSource {
        SimulatedSource::new(SourceSpec::for_kind(kind), world())
    }

    #[test]
    fn coverage_is_partial_and_stable() {
        let s = source(SourceKind::Publons);
        let c1 = s.covered_count();
        let c2 = s.covered_count();
        assert_eq!(c1, c2);
        assert!(c1 > 50 && c1 < 200, "publons coverage {c1} out of range");
    }

    #[test]
    fn fetch_roundtrips_through_key() {
        let s = source(SourceKind::Dblp);
        let w = world();
        // Find a covered scholar.
        let id = w
            .scholars()
            .iter()
            .map(|sc| sc.id)
            .find(|&id| s.fetch_profile(&s.key_for(id)).is_ok())
            .expect("dblp covers 95%");
        let p = s.fetch_profile(&s.key_for(id)).unwrap();
        assert_eq!(p.truth, id);
        assert_eq!(p.source, SourceKind::Dblp);
    }

    #[test]
    fn bad_keys_are_not_found() {
        let s = source(SourceKind::Dblp);
        assert!(matches!(
            s.fetch_profile("dblp:zzzz-3"),
            Err(SourceError::NotFound { .. })
        ));
        assert!(matches!(
            s.fetch_profile("gs:00000000-3"),
            Err(SourceError::NotFound { .. })
        ));
        assert!(matches!(
            s.fetch_profile("dblp:00000000-999999"),
            Err(SourceError::NotFound { .. })
        ));
    }

    #[test]
    fn dblp_has_full_pubs_but_no_interests_or_metrics() {
        let s = source(SourceKind::Dblp);
        let w = world();
        for sc in w.scholars().iter().take(50) {
            if let Ok(p) = s.fetch_profile(&s.key_for(sc.id)) {
                assert!(p.interests.is_empty());
                assert_eq!(p.metrics, SourceMetrics::default());
                assert_eq!(p.publications.len(), w.papers_of(sc.id).len());
            }
        }
    }

    #[test]
    fn google_scholar_exposes_interests_and_metrics() {
        let s = source(SourceKind::GoogleScholar);
        let w = world();
        let mut saw_interests = false;
        let mut saw_metrics = false;
        for sc in w.scholars() {
            if let Ok(p) = s.fetch_profile(&s.key_for(sc.id)) {
                saw_interests |= !p.interests.is_empty();
                saw_metrics |= p.metrics.citations.is_some();
            }
        }
        assert!(saw_interests && saw_metrics);
    }

    #[test]
    fn publons_exposes_reviews() {
        let s = source(SourceKind::Publons);
        let w = world();
        let any_reviews = w.scholars().iter().any(|sc| {
            s.fetch_profile(&s.key_for(sc.id))
                .map(|p| !p.reviews.is_empty())
                .unwrap_or(false)
        });
        assert!(any_reviews);
    }

    #[test]
    fn orcid_exposes_affiliation_history() {
        let s = source(SourceKind::Orcid);
        let w = world();
        let any_history = w.scholars().iter().any(|sc| {
            s.fetch_profile(&s.key_for(sc.id))
                .map(|p| !p.affiliation_history.is_empty())
                .unwrap_or(false)
        });
        assert!(any_history);
    }

    #[test]
    fn interest_search_finds_registered_scholars() {
        let s = source(SourceKind::GoogleScholar);
        let w = world();
        // Take some scholar's interest and search for it.
        let sc = &w.scholars()[0];
        let label = w.ontology.label(sc.interests[0]);
        let hits = s.search_by_interest(label).unwrap();
        for h in &hits {
            let normalized: Vec<String> = h.interests.iter().map(|i| normalize_label(i)).collect();
            assert!(normalized.contains(&normalize_label(label)));
        }
    }

    #[test]
    fn batched_interest_search_matches_per_label_results() {
        let s = source(SourceKind::GoogleScholar);
        let w = world();
        let labels: Vec<Arc<str>> = w
            .scholars()
            .iter()
            .take(4)
            .map(|sc| intern::intern(w.ontology.label(sc.interests[0])))
            .collect();
        let batched = s.search_by_interests(&labels).unwrap();
        assert_eq!(batched.len(), labels.len());
        for (label, hits) in &batched {
            let single = s.search_by_interest(label).unwrap();
            assert_eq!(hits, &single, "batched hits diverge for {label}");
        }
    }

    #[test]
    fn batched_interest_search_pays_one_call() {
        // FailThenRecover{1}: the first call fails. A batched query over
        // many labels must consume exactly one call-counter tick, so the
        // second batch (and everything after) succeeds.
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), world())
            .with_fault(FaultSchedule::FailThenRecover { failures: 1 });
        let labels: Vec<Arc<str>> = (0..10)
            .map(|i| intern::intern(&format!("label {i}")))
            .collect();
        assert!(s.search_by_interests(&labels).is_err(), "first call fails");
        assert!(
            s.search_by_interests(&labels).is_ok(),
            "one batch = one call; the fault schedule must have advanced exactly once"
        );
    }

    #[test]
    fn batched_interest_search_echoes_the_callers_interned_labels() {
        let s = source(SourceKind::GoogleScholar);
        let w = world();
        let labels: Vec<Arc<str>> = w
            .scholars()
            .iter()
            .take(3)
            .map(|sc| intern::intern(w.ontology.label(sc.interests[0])))
            .collect();
        let batched = s.search_by_interests(&labels).unwrap();
        for ((echoed, _), sent) in batched.iter().zip(&labels) {
            assert!(
                Arc::ptr_eq(echoed, sent),
                "echoed label must share the caller's allocation"
            );
        }
    }

    #[test]
    fn batched_interest_search_rejected_by_incapable_source() {
        let s = source(SourceKind::Dblp);
        assert!(matches!(
            s.search_by_interests(&[intern::intern("databases")]),
            Err(SourceError::Unsupported { .. })
        ));
    }

    #[test]
    fn dblp_rejects_interest_search() {
        let s = source(SourceKind::Dblp);
        assert!(matches!(
            s.search_by_interest("databases"),
            Err(SourceError::Unsupported { .. })
        ));
    }

    #[test]
    fn name_search_matches_collisions_together() {
        let w = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 300,
                name_collision_rate: 0.4,
                ..Default::default()
            })
            .generate(),
        );
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::Dblp), w.clone());
        // Find a name shared by several scholars. Pick one where at least
        // two holders are actually covered by this source — DBLP's
        // coverage is partial, so an arbitrary colliding name might have
        // only one covered holder.
        let mut counts: HashMap<String, Vec<ScholarId>> = HashMap::new();
        for sc in w.scholars() {
            counts.entry(sc.full_name()).or_default().push(sc.id);
        }
        let (name, covered) = counts
            .iter()
            .filter(|(_, v)| v.len() >= 2)
            .map(|(name, ids)| {
                let covered: Vec<_> = ids
                    .iter()
                    .copied()
                    .filter(|&id| s.fetch_profile(&s.key_for(id)).is_ok())
                    .collect();
                (name, covered)
            })
            .find(|(_, covered)| covered.len() >= 2)
            .expect("collision sample too small");
        let hits = s.search_by_name(name).unwrap();
        // All covered holders of the name are returned.
        let got: std::collections::HashSet<ScholarId> = hits.iter().map(|p| p.truth).collect();
        for id in covered {
            assert!(got.contains(&id));
        }
    }

    #[test]
    fn failure_injection_is_retriable() {
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.failure_rate = 0.5;
        let s = SimulatedSource::new(spec, world());
        let mut failures = 0;
        let mut successes = 0;
        for _ in 0..100 {
            match s.search_by_name("nobody") {
                Ok(_) => successes += 1,
                Err(e) => {
                    assert!(e.is_retriable());
                    failures += 1;
                }
            }
        }
        assert!(
            failures > 20 && successes > 20,
            "f={failures} s={successes}"
        );
    }

    #[test]
    fn rate_limit_triggers_then_recovers() {
        let mut spec = SourceSpec::for_kind(SourceKind::Dblp);
        spec.rate_limit = 5;
        let s = SimulatedSource::new(spec, world());
        let mut limited = false;
        for _ in 0..12 {
            if matches!(s.search_by_name("x"), Err(SourceError::RateLimited { .. })) {
                limited = true;
                break;
            }
        }
        assert!(limited);
        // After the rejection, the window resets and calls succeed again.
        assert!(s.search_by_name("x").is_ok());
    }

    #[test]
    fn fail_then_recover_schedule_is_exact() {
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::Dblp), world())
            .with_fault(FaultSchedule::FailThenRecover { failures: 3 });
        for i in 0..3 {
            assert!(
                matches!(s.search_by_name("x"), Err(SourceError::Transient { .. })),
                "call {i} should fail"
            );
        }
        for _ in 0..5 {
            assert!(
                s.search_by_name("x").is_ok(),
                "recovered source must stay up"
            );
        }
    }

    #[test]
    fn permanent_outage_never_recovers() {
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::Dblp), world())
            .with_fault(FaultSchedule::PermanentOutage);
        for _ in 0..10 {
            assert!(matches!(
                s.search_by_name("x"),
                Err(SourceError::Transient { .. })
            ));
        }
    }

    #[test]
    fn slow_schedule_charges_the_injected_clock() {
        let clock = crate::clock::SimulatedClock::new();
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::Dblp), world())
            .with_fault(FaultSchedule::Slow {
                latency_micros: 40_000,
            })
            .with_clock(clock.clone());
        assert!(s.search_by_name("x").is_ok());
        assert_eq!(clock.now_micros(), 40_000);
        assert!(s.search_by_name("x").is_ok());
        assert_eq!(clock.now_micros(), 80_000, "each call pays fixed latency");
    }

    #[test]
    fn rate_limit_bursts_repeat_exactly() {
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::Dblp), world()).with_fault(
            FaultSchedule::RateLimitBursts {
                allowed: 2,
                limited: 1,
            },
        );
        for window in 0..3 {
            for _ in 0..2 {
                assert!(s.search_by_name("x").is_ok(), "window {window}");
            }
            assert!(
                matches!(s.search_by_name("x"), Err(SourceError::RateLimited { .. })),
                "window {window} third call must be limited"
            );
        }
    }

    #[test]
    fn persistent_profiles_round_trip_through_the_store() {
        let dir = std::env::temp_dir().join(format!("minaret-sim-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let w = world();
        let fresh =
            SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone());
        let id = w.scholars()[3].id;
        let expected = fresh.fetch_profile(&fresh.key_for(id)).unwrap();

        // First persistent source: builds and writes back.
        {
            let store = Arc::new(
                minaret_store::Store::open(&dir, minaret_store::StoreConfig::default()).unwrap(),
            );
            let s =
                SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone())
                    .with_persistence(store.clone());
            assert!(s.profiles.is_persistent());
            assert_eq!(*s.fetch_profile(&s.key_for(id)).unwrap(), *expected);
            store.flush().unwrap();
        }
        // Second process: the profile is loaded from disk, not rebuilt,
        // and is byte-identical to the fresh build.
        let store = Arc::new(
            minaret_store::Store::open(&dir, minaret_store::StoreConfig::default()).unwrap(),
        );
        assert!(store
            .get(&crate::persist::profile_key(SourceKind::GoogleScholar, id))
            .unwrap()
            .is_some());
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::GoogleScholar), w.clone())
            .with_persistence(store.clone());
        assert_eq!(*s.fetch_profile(&s.key_for(id)).unwrap(), *expected);
        drop(s);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn profiles_are_deterministic() {
        let s = source(SourceKind::GoogleScholar);
        let w = world();
        let id = w.scholars()[3].id;
        let key = s.key_for(id);
        if let (Ok(a), Ok(b)) = (s.fetch_profile(&key), s.fetch_profile(&key)) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn profile_store_shares_one_allocation_across_entry_points() {
        let s = source(SourceKind::GoogleScholar);
        let w = world();
        // Find a covered scholar via fetch, then reach the same profile
        // through name search: both must hand out the same Arc.
        let (id, fetched) = w
            .scholars()
            .iter()
            .find_map(|sc| s.fetch_profile(&s.key_for(sc.id)).ok().map(|p| (sc.id, p)))
            .expect("gs covers most scholars");
        let by_name = s.search_by_name(&fetched.display_name).unwrap();
        let same = by_name
            .iter()
            .find(|p| p.truth == id)
            .expect("name search must find the fetched scholar");
        assert!(
            Arc::ptr_eq(&fetched, same),
            "memoized store must share, not rebuild"
        );
        let again = s.fetch_profile(&s.key_for(id)).unwrap();
        assert!(Arc::ptr_eq(&fetched, &again));
    }

    #[test]
    fn profile_store_grows_past_its_fixed_slots() {
        // A store sized for 2 scholars asked about id 40: the overflow
        // path must build (once) instead of panicking on the slot index.
        let store = ProfileStore::with_capacity(2);
        let make = |id: ScholarId| SourceProfile {
            source: SourceKind::GoogleScholar,
            key: format!("gs:{}", id.index()),
            display_name: "Late Arrival".into(),
            affiliation: None,
            country: None,
            affiliation_history: vec![],
            interests: vec![],
            publications: vec![],
            metrics: Default::default(),
            reviews: vec![],
            truth: id,
        };
        let id = ScholarId(40);
        let a = store.get_or_build(id, || make(id));
        let b = store.get_or_build(id, || panic!("already built"));
        assert!(Arc::ptr_eq(&a, &b), "overflow entries build once");
        assert_eq!(store.built_count(), 1);
        // In-range ids still use their fixed slot.
        let low = ScholarId(1);
        let c = store.get_or_build(low, || make(low));
        assert_eq!(c.truth, low);
        assert_eq!(store.built_count(), 2);
    }

    #[test]
    fn profile_store_is_sized_from_the_world() {
        let w = world();
        let s = SimulatedSource::new(SourceSpec::for_kind(SourceKind::Dblp), w.clone());
        assert_eq!(s.profiles.slot_capacity(), w.scholars().len());
        assert_eq!(ProfileStore::with_capacity(7).slot_capacity(), 7);
    }

    #[test]
    fn search_results_are_capped_at_one_page() {
        let mut spec = SourceSpec::for_kind(SourceKind::GoogleScholar);
        spec.max_hits = 2;
        let w = world();
        let s = SimulatedSource::new(spec.clone(), w.clone());
        // Pick an interest label registered by more than two scholars.
        let (label, all_ids) = s
            .interest_index
            .iter()
            .find(|(_, ids)| ids.len() > 2)
            .map(|(l, ids)| (l.clone(), ids.clone()))
            .expect("some interest is popular enough");
        let page = s.search_by_interest(&label).unwrap();
        assert_eq!(page.len(), 2, "page cap must truncate");
        // Deterministic first-K in scholar-id order.
        let got: Vec<ScholarId> = page.iter().map(|p| p.truth).collect();
        assert_eq!(got, all_ids[..2].to_vec());
        // An uncapped source returns every match.
        spec.max_hits = 0;
        let unbounded = SimulatedSource::new(spec, w);
        assert_eq!(
            unbounded.search_by_interest(&label).unwrap().len(),
            all_ids.len()
        );
    }

    fn lazy_source_pair(
        kind: SourceKind,
        tag: &str,
    ) -> (
        SimulatedSource,
        SimulatedSource,
        Arc<World>,
        std::path::PathBuf,
    ) {
        use minaret_synth::{stream_snapshot_world, StreamingGenerator};
        let dir =
            std::env::temp_dir().join(format!("minaret-sim-lazy-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = WorldConfig {
            scholars: 200,
            ..Default::default()
        };
        let w = Arc::new(WorldGenerator::new(cfg.clone()).generate());
        let store = Arc::new(
            minaret_store::Store::open(&dir, minaret_store::StoreConfig::default()).unwrap(),
        );
        stream_snapshot_world(&store, &StreamingGenerator::new(cfg), |_| {}).unwrap();
        let lazy_world = minaret_synth::LazyWorld::open(store).unwrap().unwrap();
        let eager = SimulatedSource::new(SourceSpec::for_kind(kind), w.clone());
        let lazy = SimulatedSource::lazy(SourceSpec::for_kind(kind), lazy_world);
        (eager, lazy, w, dir)
    }

    #[test]
    fn lazy_source_serves_profiles_identical_to_eager() {
        let (eager, lazy, w, dir) = lazy_source_pair(SourceKind::GoogleScholar, "profiles");
        assert!(lazy.world.is_lazy());
        assert_eq!(lazy.name_index, eager.name_index);
        assert_eq!(lazy.interest_index, eager.interest_index);
        assert_eq!(lazy.covered_count(), eager.covered_count());
        for sc in w.scholars() {
            let key = eager.key_for(sc.id);
            assert_eq!(key, lazy.key_for(sc.id));
            match (eager.fetch_profile(&key), lazy.fetch_profile(&key)) {
                (Ok(a), Ok(b)) => assert_eq!(*a, *b, "profiles diverge for {key}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("coverage diverges for {key}: {a:?} vs {b:?}"),
            }
        }
        drop(lazy);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn lazy_source_search_matches_eager() {
        let (eager, lazy, w, dir) = lazy_source_pair(SourceKind::Publons, "search");
        let sc = &w.scholars()[0];
        assert_eq!(
            eager.search_by_name(&sc.full_name()).unwrap(),
            lazy.search_by_name(&sc.full_name()).unwrap()
        );
        let label = w.ontology.label(sc.interests[0]);
        assert_eq!(
            eager.search_by_interest(label).unwrap(),
            lazy.search_by_interest(label).unwrap()
        );
        drop(lazy);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn lazy_builds_counter_counts_materializations() {
        let (_eager, lazy, w, dir) = lazy_source_pair(SourceKind::Dblp, "telemetry");
        let telemetry = Telemetry::new();
        let lazy = lazy.with_telemetry(&telemetry);
        let mut fetched = 0;
        for sc in w.scholars().iter().take(20) {
            if lazy.fetch_profile(&lazy.key_for(sc.id)).is_ok() {
                fetched += 1;
            }
            // A second fetch hits the memoized Arc — no new build.
            let _ = lazy.fetch_profile(&lazy.key_for(sc.id));
        }
        assert!(fetched > 0);
        let snapshot = telemetry.snapshot();
        let series = snapshot
            .iter()
            .find(|m| m.name == "minaret_profile_lazy_builds_total")
            .expect("lazy build counter registered");
        assert!(
            matches!(
                series.value,
                minaret_telemetry::SnapshotValue::Counter(n) if n == fetched
            ),
            "lazy builds counted {:?}, fetched {fetched}",
            series.value
        );
        drop(lazy);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
