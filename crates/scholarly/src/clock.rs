//! Injectable time source for the resilience layer.
//!
//! Every deadline check, backoff pause, and circuit-breaker cooldown in
//! this crate reads time through [`Clock`], so tests can substitute a
//! [`SimulatedClock`] and exercise timeouts, budgets, and breaker
//! transitions deterministically — no wall-clock sleeps, no flaky
//! timing assertions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic microsecond clock plus the ability to wait on it.
///
/// Production uses [`SystemClock`]; deterministic tests use
/// [`SimulatedClock`], where "sleeping" merely advances the reading.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since the clock's origin. Monotonic, starts near 0.
    fn now_micros(&self) -> u64;

    /// Waits for `micros` microseconds of this clock's time.
    fn sleep_micros(&self, micros: u64);
}

/// The real wall clock: `now` is time since construction, `sleep` is
/// [`std::thread::sleep`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn sleep_micros(&self, micros: u64) {
        if micros > 0 {
            std::thread::sleep(Duration::from_micros(micros));
        }
    }
}

/// A virtual clock: time only moves when something sleeps on it (or
/// [`advance`](SimulatedClock::advance) is called). Sharing one handle
/// between scripted sources and the registry makes slow responses,
/// deadlines, and breaker cooldowns fully reproducible.
#[derive(Debug, Default)]
pub struct SimulatedClock {
    now: AtomicU64,
}

impl SimulatedClock {
    /// A simulated clock starting at 0, ready to share.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Moves the clock forward by `micros` without blocking anyone.
    pub fn advance(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::SeqCst);
    }
}

impl Clock for SimulatedClock {
    fn now_micros(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_micros(&self, micros: u64) {
        self.advance(micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn simulated_clock_only_moves_when_told() {
        let c = SimulatedClock::new();
        assert_eq!(c.now_micros(), 0);
        c.sleep_micros(250);
        assert_eq!(c.now_micros(), 250);
        c.advance(750);
        assert_eq!(c.now_micros(), 1_000);
    }
}
