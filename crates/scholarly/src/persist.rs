//! Versioned binary codec for [`SourceProfile`] and the store-backed
//! profile cache.
//!
//! A simulated source's view of a scholar is deterministic, so a
//! profile built once can be persisted and served from disk on the next
//! process start instead of being rebuilt (and re-allocating its string
//! fields) from the world. The encoding uses the `minaret-store` codec
//! envelope — `[magic][tag][version]` — so a data directory written by
//! a newer build is rejected with a descriptive
//! [`StoreError::VersionMismatch`] rather than misparsed.
//!
//! Decoding failures on the read path are treated as cache misses by
//! [`crate::ProfileStore`]: the profile is rebuilt from the world and
//! re-persisted. The store is a cache of deterministic computation, so
//! rebuilding is always safe — but a *corrupt* store file is still
//! surfaced at open time by the engine's checksums.

use std::sync::Arc;

use minaret_store::{Reader, StoreError, Writer};
use minaret_synth::ScholarId;

use crate::record::{
    AffiliationRecord, SourceMetrics, SourceProfile, SourcePublication, SourceReview,
};
use crate::spec::SourceKind;

/// Envelope tag for encoded scholar profiles.
pub const TAG_PROFILE: u8 = 0x70; // 'p'
/// Current profile encoding version.
pub const PROFILE_FORMAT_VERSION: u8 = 1;

/// The store key a profile is persisted under: namespaced by the
/// source's key prefix so the six sources' views never collide.
#[must_use]
pub fn profile_key(kind: SourceKind, id: ScholarId) -> Vec<u8> {
    format!("profile/{}/{:08}", kind.prefix(), id.index()).into_bytes()
}

fn kind_to_byte(kind: SourceKind) -> u8 {
    SourceKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("SourceKind::ALL covers every variant") as u8
}

fn kind_from_byte(b: u8) -> Result<SourceKind, StoreError> {
    SourceKind::ALL
        .get(b as usize)
        .copied()
        .ok_or(StoreError::Codec {
            what: "scholar profile",
            detail: format!("unknown source kind byte {b}"),
        })
}

/// Encodes a profile into its versioned binary form.
///
/// Every field round-trips exactly — strings verbatim, options via
/// presence bytes — so a decoded profile is indistinguishable from the
/// freshly built one and recommendations computed from either are
/// byte-identical.
#[must_use]
pub fn encode_profile(p: &SourceProfile) -> Vec<u8> {
    let mut w = Writer::versioned(TAG_PROFILE, PROFILE_FORMAT_VERSION);
    w.u8(kind_to_byte(p.source));
    w.str(&p.key);
    w.str(&p.display_name);
    w.opt_str(p.affiliation.as_deref());
    w.opt_str(p.country.as_deref());
    w.u32(p.affiliation_history.len() as u32);
    for a in &p.affiliation_history {
        w.str(&a.institution);
        w.str(&a.country);
        w.u32(a.from_year);
        w.u32(a.to_year);
    }
    w.u32(p.interests.len() as u32);
    for i in &p.interests {
        w.str(i);
    }
    w.u32(p.publications.len() as u32);
    for pubrec in &p.publications {
        w.str(&pubrec.title);
        w.u32(pubrec.year);
        w.str(&pubrec.venue_name);
        w.u32(pubrec.coauthor_names.len() as u32);
        for c in &pubrec.coauthor_names {
            w.str(c);
        }
        w.u32(pubrec.keywords.len() as u32);
        for k in &pubrec.keywords {
            w.str(k);
        }
        w.opt_u32(pubrec.citations);
    }
    w.opt_u64(p.metrics.citations);
    w.opt_u32(p.metrics.h_index);
    w.opt_u32(p.metrics.i10_index);
    w.u32(p.reviews.len() as u32);
    for r in &p.reviews {
        w.str(&r.venue_name);
        w.u32(r.year);
        w.u32(r.turnaround_days);
        match r.quality {
            Some(q) => {
                w.u8(1);
                w.u8(q);
            }
            None => w.u8(0),
        }
    }
    w.u32(p.truth.0);
    w.finish()
}

/// Decodes a profile previously written by [`encode_profile`].
pub fn decode_profile(bytes: &[u8]) -> Result<SourceProfile, StoreError> {
    let (mut r, _version) = Reader::versioned(
        "scholar profile",
        bytes,
        TAG_PROFILE,
        PROFILE_FORMAT_VERSION,
    )?;
    let source = kind_from_byte(r.u8()?)?;
    let key = r.str()?.to_string();
    let display_name = r.str()?.to_string();
    let affiliation = r.opt_string()?;
    let country = r.opt_string()?;
    let n = r.u32()? as usize;
    let mut affiliation_history = Vec::with_capacity(n);
    for _ in 0..n {
        affiliation_history.push(AffiliationRecord {
            institution: r.str()?.to_string(),
            country: r.str()?.to_string(),
            from_year: r.u32()?,
            to_year: r.u32()?,
        });
    }
    let n = r.u32()? as usize;
    let mut interests = Vec::with_capacity(n);
    for _ in 0..n {
        interests.push(r.str()?.to_string());
    }
    let n = r.u32()? as usize;
    let mut publications = Vec::with_capacity(n);
    for _ in 0..n {
        let title = r.str()?.to_string();
        let year = r.u32()?;
        let venue_name = r.str()?.to_string();
        let m = r.u32()? as usize;
        let mut coauthor_names = Vec::with_capacity(m);
        for _ in 0..m {
            coauthor_names.push(r.str()?.to_string());
        }
        let m = r.u32()? as usize;
        let mut keywords = Vec::with_capacity(m);
        for _ in 0..m {
            keywords.push(r.str()?.to_string());
        }
        let citations = r.opt_u32()?;
        publications.push(Arc::new(SourcePublication {
            title,
            year,
            venue_name,
            coauthor_names,
            keywords,
            citations,
        }));
    }
    let metrics = SourceMetrics {
        citations: r.opt_u64()?,
        h_index: r.opt_u32()?,
        i10_index: r.opt_u32()?,
    };
    let n = r.u32()? as usize;
    let mut reviews = Vec::with_capacity(n);
    for _ in 0..n {
        let venue_name = r.str()?.to_string();
        let year = r.u32()?;
        let turnaround_days = r.u32()?;
        let quality = match r.u8()? {
            0 => None,
            1 => Some(r.u8()?),
            other => {
                return Err(StoreError::Codec {
                    what: "scholar profile",
                    detail: format!("review quality presence byte must be 0 or 1, got {other}"),
                })
            }
        };
        reviews.push(Arc::new(SourceReview {
            venue_name,
            year,
            turnaround_days,
            quality,
        }));
    }
    let truth = ScholarId(r.u32()?);
    r.expect_end()?;
    Ok(SourceProfile {
        source,
        key,
        display_name,
        affiliation,
        country,
        affiliation_history,
        interests,
        publications,
        metrics,
        reviews,
        truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_profile() -> SourceProfile {
        SourceProfile {
            source: SourceKind::Orcid,
            key: "orcid:0000-0002".into(),
            display_name: "L. Zhou".into(),
            affiliation: Some("University of Tartu".into()),
            country: None,
            affiliation_history: vec![AffiliationRecord {
                institution: "MIT".into(),
                country: "USA".into(),
                from_year: 2001,
                to_year: 2008,
            }],
            interests: vec!["semantic web".into(), "databases".into()],
            publications: vec![Arc::new(SourcePublication {
                title: "Linked Data at Scale".into(),
                year: 2017,
                venue_name: "EDBT".into(),
                coauthor_names: vec!["A. Author".into()],
                keywords: vec!["rdf".into()],
                citations: None,
            })],
            metrics: SourceMetrics {
                citations: Some(12_345),
                h_index: None,
                i10_index: Some(9),
            },
            reviews: vec![
                Arc::new(SourceReview {
                    venue_name: "VLDB".into(),
                    year: 2018,
                    turnaround_days: 14,
                    quality: Some(5),
                }),
                Arc::new(SourceReview {
                    venue_name: "EDBT".into(),
                    year: 2019,
                    turnaround_days: 30,
                    quality: None,
                }),
            ],
            truth: ScholarId(42),
        }
    }

    #[test]
    fn profile_round_trips_exactly() {
        let p = rich_profile();
        let decoded = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn every_source_kind_round_trips() {
        for kind in SourceKind::ALL {
            let mut p = rich_profile();
            p.source = kind;
            assert_eq!(decode_profile(&encode_profile(&p)).unwrap().source, kind);
        }
    }

    #[test]
    fn future_version_is_a_descriptive_error() {
        let p = rich_profile();
        let mut bytes = encode_profile(&p);
        bytes[2] = PROFILE_FORMAT_VERSION + 1; // bump the version byte
        let err = decode_profile(&bytes).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("scholar profile"), "{msg}");
        assert!(msg.contains("format version"), "{msg}");
    }

    #[test]
    fn truncated_profile_is_an_error_not_a_panic() {
        let bytes = encode_profile(&rich_profile());
        for cut in 0..bytes.len() {
            assert!(decode_profile(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn profile_keys_are_namespaced_per_source() {
        let a = profile_key(SourceKind::GoogleScholar, ScholarId(7));
        let b = profile_key(SourceKind::Dblp, ScholarId(7));
        assert_ne!(a, b);
        assert!(String::from_utf8(a).unwrap().starts_with("profile/gs/"));
    }
}
