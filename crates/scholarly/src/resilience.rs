//! Resilience policies for the source fan-out: seeded exponential
//! backoff, per-source circuit breakers, and deadline/budget settings.
//!
//! Real scholarly sites are flaky and rate-limited; the paper's
//! "on-the-fly" extraction claim only holds in production if a stalled
//! or dying source cannot take the whole recommendation down. The
//! registry composes three mechanisms, all clock-injected (see
//! [`crate::Clock`]) so every decision is reproducible under test:
//!
//! * [`BackoffConfig`] — exponential retry delays with deterministic,
//!   seeded jitter; monotone non-decreasing in the attempt number and
//!   capped.
//! * [`CircuitBreaker`] — the classic closed → open → half-open state
//!   machine: after `failure_threshold` consecutive failures the source
//!   is short-circuited for `cooldown_micros`, then probe requests are
//!   let through until `probe_successes` of them succeed.
//! * [`ResilienceConfig`] — per-call deadlines and a whole-fan-out
//!   budget, plus the two policies above.

use parking_lot::Mutex;

/// FNV-1a over words — the same deterministic mixer the simulator uses,
/// reused here so jitter is a pure function of (seed, source, attempt).
fn hash64(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &p in parts {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Exponential backoff between retries, with seeded jitter.
///
/// The delay before retry `attempt` (0-based) is
/// `min(max_micros, base_micros * 2^attempt * (1 + jitter * u))` where
/// `u ∈ [0, 1)` is a deterministic hash of `(seed, salt, attempt)`.
/// Because `jitter ≤ 1`, the sequence is monotone non-decreasing for any
/// salt, and it is always capped at `max_micros` — both properties are
/// property-tested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// First retry delay; `0` disables backoff entirely (retry at once,
    /// the pre-resilience behaviour).
    pub base_micros: u64,
    /// Upper bound on any single delay.
    pub max_micros: u64,
    /// Jitter fraction in `[0, 1]`: how much of the exponential delay
    /// may be added on top (de-synchronises retry storms).
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for BackoffConfig {
    /// Backoff disabled — identical retry timing to the pre-resilience
    /// registry.
    fn default() -> Self {
        Self {
            base_micros: 0,
            max_micros: 0,
            jitter: 0.0,
            seed: 0,
        }
    }
}

impl BackoffConfig {
    /// Production-shaped defaults: 50 ms first retry, doubling, ±50%
    /// jitter, capped at 2 s.
    pub fn standard() -> Self {
        Self {
            base_micros: 50_000,
            max_micros: 2_000_000,
            jitter: 0.5,
            seed: 0x05ee_d0ff,
        }
    }

    /// The delay in microseconds before retry `attempt` (0-based) for
    /// the call stream identified by `salt` (e.g. the source kind).
    pub fn delay_micros(&self, attempt: u32, salt: u64) -> u64 {
        if self.base_micros == 0 {
            return 0;
        }
        let raw = self
            .base_micros
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX));
        let jitter = self.jitter.clamp(0.0, 1.0);
        let u = (hash64(&[self.seed, salt, attempt as u64]) >> 11) as f64 / (1u64 << 53) as f64;
        let jittered = (raw as f64 * (1.0 + jitter * u)).min(u64::MAX as f64) as u64;
        jittered.min(self.max_micros.max(self.base_micros))
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open; `0` disables the
    /// breaker (every request is allowed, the pre-resilience behaviour).
    pub failure_threshold: u32,
    /// How long an open breaker rejects before letting probes through.
    pub cooldown_micros: u64,
    /// Consecutive probe successes in half-open state needed to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    /// Breaker disabled.
    fn default() -> Self {
        Self {
            failure_threshold: 0,
            cooldown_micros: 0,
            probe_successes: 1,
        }
    }
}

impl BreakerConfig {
    /// Production-shaped defaults: open after 5 consecutive failures,
    /// cool down for 10 s, close after 2 successful probes.
    pub fn standard() -> Self {
        Self {
            failure_threshold: 5,
            cooldown_micros: 10_000_000,
            probe_successes: 2,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally; consecutive failures are counted.
    Closed,
    /// Requests are rejected without touching the source.
    Open,
    /// Cooldown elapsed; probe requests are being let through.
    HalfOpen,
}

impl BreakerState {
    /// Stable numeric encoding for the telemetry gauge
    /// (`0` closed, `1` half-open, `2` open).
    pub fn gauge_value(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_micros: u64,
    probe_successes: u32,
}

/// One source's closed → open → half-open state machine.
///
/// All transitions are driven by explicit timestamps (the registry's
/// injected clock), never by wall time, so the machine is fully
/// deterministic under test.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_micros: 0,
                probe_successes: 0,
            }),
        }
    }

    /// True when the breaker never rejects (threshold 0).
    pub fn is_disabled(&self) -> bool {
        self.config.failure_threshold == 0
    }

    /// The current state, advancing open → half-open if the cooldown has
    /// elapsed at `now_micros`.
    pub fn state(&self, now_micros: u64) -> BreakerState {
        if self.is_disabled() {
            return BreakerState::Closed;
        }
        let mut inner = self.inner.lock();
        self.roll_cooldown(&mut inner, now_micros);
        inner.state
    }

    /// Whether a request may be issued at `now_micros`. Open breakers
    /// reject fast; half-open breakers admit probes.
    pub fn allow(&self, now_micros: u64) -> bool {
        if self.is_disabled() {
            return true;
        }
        let mut inner = self.inner.lock();
        self.roll_cooldown(&mut inner, now_micros);
        inner.state != BreakerState::Open
    }

    fn roll_cooldown(&self, inner: &mut BreakerInner, now_micros: u64) {
        if inner.state == BreakerState::Open
            && now_micros.saturating_sub(inner.opened_at_micros) >= self.config.cooldown_micros
        {
            inner.state = BreakerState::HalfOpen;
            inner.probe_successes = 0;
        }
    }

    /// Records a successful (or service-is-healthy) call.
    pub fn record_success(&self) {
        if self.is_disabled() {
            return;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => inner.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                inner.probe_successes += 1;
                if inner.probe_successes >= self.config.probe_successes.max(1) {
                    inner.state = BreakerState::Closed;
                    inner.consecutive_failures = 0;
                }
            }
            // A straggler success from before the trip: ignore.
            BreakerState::Open => {}
        }
    }

    /// Records a failed call at `now_micros`; may trip the breaker open.
    pub fn record_failure(&self, now_micros: u64) {
        if self.is_disabled() {
            return;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at_micros = now_micros;
                }
            }
            // A failed probe re-opens immediately and restarts the
            // cooldown from now.
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at_micros = now_micros;
                inner.probe_successes = 0;
            }
            BreakerState::Open => {}
        }
    }
}

/// Everything the registry needs to survive flaky sources.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Deadline for one source call (including the call's own latency);
    /// a call observed to exceed it is classified as
    /// [`SourceError::DeadlineExceeded`](crate::SourceError::DeadlineExceeded).
    /// `0` disables per-call deadlines.
    pub call_deadline_micros: u64,
    /// Budget for one whole fan-out (all retries and backoff pauses of
    /// every source). Once exhausted, remaining retries are abandoned as
    /// [`SourceError::BudgetExhausted`](crate::SourceError::BudgetExhausted).
    /// `0` disables the budget.
    pub fanout_budget_micros: u64,
    /// Retry-delay policy.
    pub backoff: BackoffConfig,
    /// Per-source circuit-breaker policy.
    pub breaker: BreakerConfig,
}

impl ResilienceConfig {
    /// Everything disabled — byte-for-byte the pre-resilience registry
    /// behaviour (immediate retries, no deadlines, no breaker).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Production-shaped defaults: 2 s per call, 8 s per fan-out,
    /// standard backoff and breaker. Used by the server and CLI.
    pub fn standard() -> Self {
        Self {
            call_deadline_micros: 2_000_000,
            fanout_budget_micros: 8_000_000,
            backoff: BackoffConfig::standard(),
            breaker: BreakerConfig::standard(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn breaker(threshold: u32, cooldown: u64, probes: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown_micros: cooldown,
            probe_successes: probes,
        })
    }

    /// One scripted step against the breaker: an event at a timestamp,
    /// then the state we expect to observe at that same timestamp.
    enum Event {
        Fail(u64),
        Succeed(u64),
        /// Only observe (drives open → half-open on cooldown expiry).
        Check(u64),
    }

    #[test]
    fn breaker_state_machine_table() {
        use BreakerState::*;
        use Event::*;
        // (name, failure_threshold, cooldown_micros, probe_successes, script)
        type Case = (&'static str, u32, u64, u32, Vec<(Event, BreakerState)>);
        let cases: Vec<Case> = vec![
            (
                "closed until threshold, then open",
                3,
                1_000,
                1,
                vec![
                    (Fail(0), Closed),
                    (Fail(1), Closed),
                    (Fail(2), Open),
                    (Check(500), Open),
                ],
            ),
            (
                "success resets the consecutive counter",
                2,
                1_000,
                1,
                vec![
                    (Fail(0), Closed),
                    (Succeed(1), Closed),
                    (Fail(2), Closed),
                    (Fail(3), Open),
                ],
            ),
            (
                "open rejects fast until cooldown, then half-open",
                1,
                1_000,
                1,
                vec![
                    (Fail(0), Open),
                    (Check(999), Open),
                    (Check(1_000), HalfOpen),
                ],
            ),
            (
                "half-open probe success closes after quota",
                1,
                100,
                2,
                vec![
                    (Fail(0), Open),
                    (Check(100), HalfOpen),
                    (Succeed(101), HalfOpen),
                    (Succeed(102), Closed),
                ],
            ),
            (
                "half-open probe failure re-opens and restarts cooldown",
                1,
                100,
                1,
                vec![
                    (Fail(0), Open),
                    (Check(100), HalfOpen),
                    (Fail(150), Open),
                    (Check(249), Open),
                    (Check(250), HalfOpen),
                    (Succeed(251), Closed),
                ],
            ),
        ];
        for (name, threshold, cooldown, probes, steps) in cases {
            let b = breaker(threshold, cooldown, probes);
            for (i, (event, expected)) in steps.into_iter().enumerate() {
                let now = match event {
                    Fail(t) => {
                        // `allow` first, the way the registry drives it.
                        b.allow(t);
                        b.record_failure(t);
                        t
                    }
                    Succeed(t) => {
                        b.allow(t);
                        b.record_success();
                        t
                    }
                    Check(t) => t,
                };
                assert_eq!(
                    b.state(now),
                    expected,
                    "case {name:?}, step {i}: wrong state at t={now}"
                );
            }
        }
    }

    #[test]
    fn open_breaker_rejects_and_closed_allows() {
        let b = breaker(1, 1_000, 1);
        assert!(b.allow(0));
        b.record_failure(0);
        assert!(!b.allow(10), "open breaker must reject fast");
        assert!(b.allow(1_000), "cooldown expiry admits a probe");
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let b = breaker(0, 0, 1);
        for t in 0..50 {
            b.record_failure(t);
            assert!(b.allow(t));
            assert_eq!(b.state(t), BreakerState::Closed);
        }
    }

    #[test]
    fn disabled_backoff_is_zero() {
        let b = BackoffConfig::default();
        for attempt in 0..10 {
            assert_eq!(b.delay_micros(attempt, 7), 0);
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_seed() {
        let b = BackoffConfig::standard();
        let a: Vec<u64> = (0..8).map(|n| b.delay_micros(n, 3)).collect();
        let c: Vec<u64> = (0..8).map(|n| b.delay_micros(n, 3)).collect();
        assert_eq!(a, c);
        // A different salt (source) jitters differently but stays in
        // the same exponential envelope.
        let d: Vec<u64> = (0..8).map(|n| b.delay_micros(n, 4)).collect();
        assert_ne!(a, d);
    }

    proptest! {
        #[test]
        fn backoff_delays_are_monotone_and_capped(
            base in 1u64..1_000_000,
            cap_mult in 1u64..1_000,
            jitter in 0.0f64..1.0,
            seed in 0u64..u64::MAX,
            salt in 0u64..u64::MAX,
        ) {
            let cfg = BackoffConfig {
                base_micros: base,
                max_micros: base.saturating_mul(cap_mult),
                jitter,
                seed,
            };
            let cap = cfg.max_micros.max(cfg.base_micros);
            let mut prev = 0u64;
            for attempt in 0..64 {
                let d = cfg.delay_micros(attempt, salt);
                prop_assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
                prop_assert!(d <= cap, "attempt {attempt}: {d} > cap {cap}");
                prev = d;
            }
        }
    }
}
