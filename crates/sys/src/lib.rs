//! Thin, safe wrappers over the Linux syscalls the serving layer needs.
//!
//! The workspace policy is "no external dependencies" (see
//! `shims/README.md`), so instead of pulling in `libc`/`mio` this crate
//! declares the handful of `extern "C"` prototypes itself — libc is
//! always linked by std — and keeps every `unsafe` block behind a safe
//! API. Today that is epoll: `minaret-http`'s reactor registers
//! non-blocking sockets here and parks in [`Epoll::wait`] until one is
//! ready.
//!
//! Everything else in the workspace stays `#![forbid(unsafe_code)]`;
//! this crate is the single audited exception.

#![deny(missing_docs)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// `EPOLL_CLOEXEC`: close the epoll fd on exec.
const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `epoll_ctl` opcodes.
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
/// Readiness bits (subset the reactor uses).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (12 bytes); other architectures use natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// Which readiness classes a registration subscribes to.
///
/// Error and hang-up conditions (`EPOLLERR`/`EPOLLHUP`) are always
/// reported by the kernel regardless of the requested interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd is readable.
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No readiness interest; only `EPOLLERR`/`EPOLLHUP` are delivered.
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification from [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The caller-chosen token the fd was registered with.
    pub token: u64,
    /// The fd is readable (or a peer close made reads return EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// `EPOLLERR` or `EPOLLHUP`: the connection is in a terminal state.
    pub error: bool,
}

/// A level-triggered epoll instance.
///
/// Registrations carry a caller-chosen `u64` token that comes back in
/// each [`Event`]; the reactor uses it as a slot index into its
/// connection table.
pub struct Epoll {
    fd: RawFd,
}

impl std::fmt::Debug for Epoll {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Epoll(fd {})", self.fd)
    }
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no memory preconditions.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<RawEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map(|e| e as *mut RawEvent)
            .unwrap_or(std::ptr::null_mut());
        // SAFETY: `ptr` is either null (DEL) or points at a live,
        // properly initialized RawEvent on this stack frame.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` with the given interest and token.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(RawEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Changes the interest (and token) of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(RawEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Removes `fd` from the interest set. Closing the fd does this
    /// implicitly; explicit removal keeps bookkeeping honest.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until at least one registered fd is ready or `timeout_ms`
    /// elapses (`None` waits forever), appending readiness into `out`.
    /// Returns the number of events delivered; an interrupted wait
    /// (`EINTR`) reports zero events rather than an error.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        let mut raw = [RawEvent { events: 0, data: 0 }; 256];
        let timeout = timeout_ms.unwrap_or(-1).max(-1);
        // SAFETY: `raw` is a live, writable buffer of 256 RawEvents and
        // maxevents matches its length.
        let n = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), raw.len() as c_int, timeout) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for e in raw.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let bits = e.events;
            let token = e.data;
            out.push(Event {
                token,
                readable: bits & EPOLLIN != 0,
                writable: bits & EPOLLOUT != 0,
                error: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is a valid fd owned exclusively by this
        // struct; double-close is impossible because Drop runs once.
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_peer_write() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);

        a.write_all(b"x").unwrap();
        events.clear();
        assert_eq!(ep.wait(&mut events, Some(1000)).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].error);
    }

    #[test]
    fn writable_interest_fires_immediately_on_fresh_socket() {
        let (_a, b) = UnixStream::pair().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, Some(1000)).unwrap(), 1);
        assert!(events[0].writable);
    }

    #[test]
    fn modify_switches_interest() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 3, Interest::NONE).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        // No read interest: the pending byte does not wake us.
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
        ep.modify(b.as_raw_fd(), 3, Interest::READ).unwrap();
        assert_eq!(ep.wait(&mut events, Some(1000)).unwrap(), 1);
        assert!(events[0].readable);
    }

    #[test]
    fn peer_close_reports_readable_and_level_triggered_persists() {
        let (a, mut b) = UnixStream::pair().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert!(ep.wait(&mut events, Some(1000)).unwrap() >= 1);
        // Level-triggered: the condition is still reported until consumed.
        let mut again = Vec::new();
        assert!(ep.wait(&mut again, Some(1000)).unwrap() >= 1);
        let mut sink = [0u8; 8];
        assert_eq!(b.read(&mut sink).unwrap(), 0); // EOF
    }

    #[test]
    fn delete_stops_delivery() {
        let (mut a, b) = UnixStream::pair().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), 4, Interest::READ).unwrap();
        ep.delete(b.as_raw_fd()).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, Some(0)).unwrap(), 0);
    }

    #[test]
    fn add_on_bad_fd_is_an_error_not_a_panic() {
        let ep = Epoll::new().unwrap();
        assert!(ep.add(-1, 0, Interest::READ).is_err());
    }
}
