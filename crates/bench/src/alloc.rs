//! A counting global allocator for allocation-visible benchmarking.
//!
//! Wall-clock latency on a 1-CPU container is too noisy to gate small
//! hot-path regressions, but allocation counts are exact and perfectly
//! reproducible: the same code path performs the same number of heap
//! allocations every run. The perf smoke (`examples/perf_smoke.rs`)
//! installs [`CountingAllocator`] as the global allocator (behind the
//! `alloc-count` feature) and reports allocations and bytes per
//! warm-path recommendation, which `ci.sh` gates against the committed
//! baseline.
//!
//! Counting is two relaxed atomic increments per allocation — cheap
//! enough to leave on for a measurement binary, but not meant for
//! production servers, hence the feature gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper around [`System`] that counts every
/// allocation and allocated byte. Install with `#[global_allocator]`.
///
/// Reallocation growth counts as one allocation (the data moved), and
/// frees are not subtracted — the counters measure allocator *traffic*,
/// which is what costs time, not live-set size.
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are plain atomics
// and never allocate themselves.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of the allocation counters, taken with [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    allocs: u64,
    bytes: u64,
}

impl AllocSnapshot {
    /// Allocations performed since `earlier`.
    pub fn allocs_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocs.wrapping_sub(earlier.allocs)
    }

    /// Bytes allocated since `earlier`.
    pub fn bytes_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.bytes.wrapping_sub(earlier.bytes)
    }
}

/// Reads the current counters. Meaningful only when
/// [`CountingAllocator`] is installed as the global allocator;
/// otherwise both deltas stay zero.
#[must_use]
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// True when the counters are live (i.e. the counting allocator is
/// installed): performs a tiny allocation and checks the counter moved.
#[must_use]
pub fn is_counting() -> bool {
    let before = snapshot();
    let probe = vec![0u8; 1];
    std::hint::black_box(&probe);
    let after = snapshot();
    after.allocs_since(&before) > 0
}
