//! Shared fixtures for the MINARET benchmark suite.
//!
//! Every bench target regenerates one experiment from `DESIGN.md`'s
//! index (see `EXPERIMENTS.md` for paper-vs-measured notes). The helpers
//! here build the same world + sources + framework stack the evaluation
//! harness uses, at bench-friendly sizes.

#[cfg(feature = "alloc-count")]
pub mod alloc;

use std::sync::Arc;

use minaret_core::{EditorConfig, ManuscriptDetails, Minaret};
use minaret_ontology::Ontology;
use minaret_scholarly::{
    RegistryConfig, ScholarSource, SimulatedSource, SourceRegistry, SourceSpec,
};
use minaret_synth::{SubmissionGenerator, World, WorldConfig, WorldGenerator};
use minaret_telemetry::Telemetry;

/// A prebuilt world + registry + framework, plus one ready manuscript.
pub struct BenchStack {
    /// The synthetic world.
    pub world: Arc<World>,
    /// The six simulated sources.
    pub registry: Arc<SourceRegistry>,
    /// The curated ontology.
    pub ontology: Arc<Ontology>,
    /// The framework under test.
    pub minaret: Minaret,
    /// A representative manuscript generated from the world.
    pub manuscript: ManuscriptDetails,
}

/// Builds the standard bench stack for a world of `scholars` scholars.
pub fn stack(scholars: usize) -> BenchStack {
    stack_with(scholars, 0.05, EditorConfig::default())
}

/// Like [`stack`], but with `telemetry` wired through both the source
/// registry and the framework — the configuration the overhead bench
/// compares against the disabled default.
pub fn telemetry_stack(scholars: usize, telemetry: Telemetry) -> BenchStack {
    let base = stack(scholars);
    let mut registry = SourceRegistry::with_telemetry(RegistryConfig::default(), telemetry.clone());
    for spec in SourceSpec::all_defaults() {
        registry.register(
            Arc::new(SimulatedSource::new(spec, base.world.clone())) as Arc<dyn ScholarSource>
        );
    }
    let registry = Arc::new(registry);
    let minaret = Minaret::new(
        registry.clone(),
        base.ontology.clone(),
        EditorConfig::default(),
    )
    .with_telemetry(telemetry);
    BenchStack {
        registry,
        minaret,
        ..base
    }
}

/// Like [`stack`], but with every source's call latency set to
/// `latency_micros` — scraping-scale round trips, the regime MINARET's
/// on-the-fly extraction actually runs in and the one the batched
/// fan-out exists for (one policed round trip per source per batch
/// instead of one per label).
pub fn latency_stack(scholars: usize, latency_micros: u64) -> BenchStack {
    let base = stack(scholars);
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for mut spec in SourceSpec::all_defaults() {
        spec.latency_micros = latency_micros;
        registry.register(
            Arc::new(SimulatedSource::new(spec, base.world.clone())) as Arc<dyn ScholarSource>
        );
    }
    let registry = Arc::new(registry);
    let minaret = Minaret::new(
        registry.clone(),
        base.ontology.clone(),
        EditorConfig::default(),
    );
    BenchStack {
        registry,
        minaret,
        ..base
    }
}

/// Builds a stack with a custom collision rate and editor config.
pub fn stack_with(scholars: usize, name_collision_rate: f64, editor: EditorConfig) -> BenchStack {
    let world = Arc::new(
        WorldGenerator::new(WorldConfig {
            name_collision_rate,
            ..WorldConfig::sized(scholars)
        })
        .generate(),
    );
    let ontology = Arc::new(minaret_ontology::seed::curated_cs_ontology());
    let mut registry = SourceRegistry::new(RegistryConfig::default());
    for spec in SourceSpec::all_defaults() {
        registry.register(Arc::new(SimulatedSource::new(spec, world.clone()))
            as Arc<dyn ScholarSource>);
    }
    let registry = Arc::new(registry);
    let minaret = Minaret::new(registry.clone(), ontology.clone(), editor);
    let manuscript = manuscript_from(&world, 0xBE);
    BenchStack {
        world,
        registry,
        ontology,
        minaret,
        manuscript,
    }
}

/// Generates a manuscript from the world's own submission generator.
pub fn manuscript_from(world: &Arc<World>, seed: u64) -> ManuscriptDetails {
    let sub = SubmissionGenerator::new(world, seed)
        .generate()
        .expect("bench worlds always yield submissions");
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| {
                let s = world.scholar(id);
                let inst = world.institution(s.current_affiliation());
                minaret_core::AuthorInput {
                    name: s.full_name(),
                    affiliation: Some(inst.name.clone()),
                    country: Some(inst.country.clone()),
                }
            })
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_stack_is_usable() {
        let s = stack(150);
        let report = s.minaret.recommend(&s.manuscript).unwrap();
        assert!(!report.recommendations.is_empty());
    }
}
