//! Micro-benchmarks of the substrate crates: JSON codec, inverted index,
//! profile merging, text normalization, ontology similarity.

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_bench::stack;
use minaret_index::IndexBuilder;
use minaret_json::{parse, Value};
use minaret_ontology::{normalize_label, seed::curated_cs_ontology};
use minaret_scholarly::merge_profiles;

fn bench_json(c: &mut Criterion) {
    // A recommendation-response-shaped document.
    let mut recs = Vec::new();
    for i in 0..50 {
        recs.push(
            Value::object()
                .set("rank", i + 1usize)
                .set("name", format!("Reviewer Number{i}"))
                .set("total_score", 0.5 + i as f64 / 100.0)
                .set(
                    "score_details",
                    Value::object()
                        .set("topic_coverage", 0.9)
                        .set("scientific_impact", 0.4)
                        .set("recency", 0.7),
                ),
        );
    }
    let doc = Value::object().set("recommendations", recs);
    let text = doc.to_string();
    c.bench_function("substrates/json_serialize_50_recs", |b| {
        b.iter(|| std::hint::black_box(doc.to_string()))
    });
    c.bench_function("substrates/json_parse_50_recs", |b| {
        b.iter(|| std::hint::black_box(parse(&text).unwrap()))
    });
}

fn bench_index(c: &mut Criterion) {
    let mut builder = IndexBuilder::new();
    let topics = curated_cs_ontology();
    let labels: Vec<&str> = topics.topics().map(|t| t.label.as_str()).collect();
    for i in 0..2000 {
        let text = format!(
            "{} {} {} study analysis",
            labels[i % labels.len()],
            labels[(i * 7) % labels.len()],
            labels[(i * 13) % labels.len()]
        );
        builder.add_document(&text);
    }
    let index = builder.build();
    c.bench_function("substrates/index_search_2000_docs", |b| {
        b.iter(|| std::hint::black_box(index.search("semantic web big data processing", 10)))
    });
}

fn bench_merge_and_normalize(c: &mut Criterion) {
    let s = stack(300);
    let (profiles, _) = s
        .registry
        .search_by_interest(s.world.ontology.label(s.world.scholars()[0].interests[0]));
    c.bench_function("substrates/merge_profiles", |b| {
        b.iter(|| std::hint::black_box(merge_profiles(profiles.clone())))
    });
    c.bench_function("substrates/normalize_label", |b| {
        b.iter(|| std::hint::black_box(normalize_label("  Large-Scale  SEMANTIC Web!! ")))
    });
}

fn bench_similarity(c: &mut Criterion) {
    let o = curated_cs_ontology();
    let ids: Vec<_> = o.topics().map(|t| t.id).collect();
    c.bench_function("substrates/ontology_similarity_all_pairs_sample", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for i in (0..ids.len()).step_by(7) {
                for j in (0..ids.len()).step_by(13) {
                    total += o.similarity(ids[i], ids[j]);
                }
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_json,
    bench_index,
    bench_merge_and_normalize,
    bench_similarity
);
criterion_main!(benches);
