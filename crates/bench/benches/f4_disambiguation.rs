//! Bench F4: author identity resolution at low and high name-collision
//! rates (Figure 4).

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_bench::stack_with;
use minaret_core::EditorConfig;
use minaret_disambig::{AuthorQuery, IdentityResolver, ResolutionPolicy};

fn bench_f4(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_disambiguation");
    group.sample_size(20);
    for (label, rate) in [("clean_names", 0.0), ("colliding_names", 0.5)] {
        let s = stack_with(400, rate, EditorConfig::default());
        let scholar = s
            .world
            .scholars()
            .iter()
            .find(|sc| !s.world.papers_of(sc.id).is_empty())
            .unwrap();
        let inst = s.world.institution(scholar.current_affiliation());
        let query = AuthorQuery {
            name: scholar.full_name(),
            affiliation: Some(inst.name.clone()),
            country: Some(inst.country.clone()),
            context_keywords: scholar
                .interests
                .iter()
                .map(|&t| s.world.ontology.label(t).to_string())
                .collect(),
        };
        group.bench_function(label, |b| {
            let resolver = IdentityResolver::new(&s.registry);
            b.iter(|| {
                std::hint::black_box(resolver.resolve(query.clone(), &ResolutionPolicy::AutoTop1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_f4);
criterion_main!(benches);
