//! Bench E7: end-to-end recommendation latency vs. world size, batch
//! throughput vs. worker count, and batched vs. per-label retrieval as
//! the label set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minaret_bench::{latency_stack, manuscript_from, stack};

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_scalability");
    group.sample_size(10);
    for scholars in [250usize, 500, 1000, 2000] {
        let s = stack(scholars);
        group.bench_with_input(BenchmarkId::from_parameter(scholars), &scholars, |b, _| {
            b.iter(|| std::hint::black_box(s.minaret.recommend(&s.manuscript).unwrap()))
        });
    }
    group.finish();

    // Batch mode: 8 manuscripts through 1/2/4 workers.
    let s = stack(500);
    let manuscripts: Vec<_> = (0..8u64)
        .map(|i| manuscript_from(&s.world, 0xBA7C + i))
        .collect();
    let mut batch = c.benchmark_group("e7_scalability/batch_8_manuscripts");
    batch.sample_size(10);
    for workers in [1usize, 2, 4] {
        batch.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| std::hint::black_box(s.minaret.recommend_batch(&manuscripts, w)))
        });
    }
    batch.finish();

    // Label-set sweep: the same labels retrieved as one batched fan-out
    // vs. one fan-out per label (the pre-batching pipeline's cost model).
    // Sources carry scraping-scale latency — per-label retrieval pays
    // one policed round trip per label, batched pays one per batch.
    let s = latency_stack(500, 500);
    let mut labels: Vec<String> = s
        .ontology
        .topics()
        .map(|t| t.label.clone())
        .take(80)
        .collect();
    let mut filler = 0usize;
    while labels.len() < 80 {
        // Unknown labels still pay the fan-out; cost is what's measured.
        labels.push(format!("synthetic topic {filler}"));
        filler += 1;
    }
    let mut sweep = c.benchmark_group("e7_scalability/label_sweep");
    sweep.sample_size(10);
    for n in [5usize, 20, 80] {
        let set: Vec<String> = labels[..n].to_vec();
        sweep.bench_with_input(BenchmarkId::new("batched", n), &set, |b, set| {
            b.iter(|| std::hint::black_box(s.registry.search_by_interests_report(set)))
        });
        sweep.bench_with_input(BenchmarkId::new("per_label", n), &set, |b, set| {
            b.iter(|| {
                for label in set {
                    std::hint::black_box(s.registry.search_by_interest_report(label));
                }
            })
        });
    }
    sweep.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
