//! Bench E7: end-to-end recommendation latency vs. world size, and batch
//! throughput vs. worker count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minaret_bench::{manuscript_from, stack};

fn bench_e7(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_scalability");
    group.sample_size(10);
    for scholars in [250usize, 500, 1000, 2000] {
        let s = stack(scholars);
        group.bench_with_input(BenchmarkId::from_parameter(scholars), &scholars, |b, _| {
            b.iter(|| std::hint::black_box(s.minaret.recommend(&s.manuscript).unwrap()))
        });
    }
    group.finish();

    // Batch mode: 8 manuscripts through 1/2/4 workers.
    let s = stack(500);
    let manuscripts: Vec<_> = (0..8u64)
        .map(|i| manuscript_from(&s.world, 0xBA7C + i))
        .collect();
    let mut batch = c.benchmark_group("e7_scalability/batch_8_manuscripts");
    batch.sample_size(10);
    for workers in [1usize, 2, 4] {
        batch.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| std::hint::black_box(s.minaret.recommend_batch(&manuscripts, w)))
        });
    }
    batch.finish();
}

criterion_group!(benches, bench_e7);
criterion_main!(benches);
