//! Bench E5: the ranking phase in isolation — scoring a candidate pool
//! under the five-component weighted sum.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_bench::stack;
use minaret_core::rank::{score_candidate, KeywordExpansionSet};
use minaret_core::EditorConfig;
use minaret_ontology::{normalize_label, KeywordExpander};
use minaret_scholarly::merge_profiles;

fn bench_e5(c: &mut Criterion) {
    let s = stack(400);
    let expander = KeywordExpander::with_defaults(&s.ontology);
    let expansions: Vec<KeywordExpansionSet> = s
        .manuscript
        .keywords
        .iter()
        .map(|kw| {
            let mut scores = HashMap::new();
            if let Ok(exps) = expander.expand(kw) {
                for e in exps {
                    scores.insert(normalize_label(&e.label), e.score);
                }
            }
            scores.insert(normalize_label(kw), 1.0);
            KeywordExpansionSet {
                original: kw.clone(),
                scores,
            }
        })
        .collect();
    let (profiles, _) = s.registry.search_by_interest(&s.manuscript.keywords[0]);
    let candidates = merge_profiles(profiles);
    assert!(!candidates.is_empty());
    let config = EditorConfig::default();

    c.bench_function("e5_weights/score_candidate_pool", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for cand in &candidates {
                let breakdown =
                    score_candidate(cand, &expansions, &s.manuscript.target_venue, &config);
                total += breakdown.total(&config.weights);
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group!(benches, bench_e5);
criterion_main!(benches);
