//! Bench E1: semantic keyword expansion on the curated ontology and on
//! large synthetic ontologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minaret_ontology::gen::{GeneratorConfig, OntologyGenerator};
use minaret_ontology::{seed::curated_cs_ontology, ExpansionConfig, KeywordExpander};

fn bench_e1(c: &mut Criterion) {
    let curated = curated_cs_ontology();
    let expander = KeywordExpander::with_defaults(&curated);
    c.bench_function("e1_expansion/curated_rdf", |b| {
        b.iter(|| std::hint::black_box(expander.expand("RDF").unwrap()))
    });
    c.bench_function("e1_expansion/curated_expand_all_4kw", |b| {
        let kws = vec![
            "RDF".to_string(),
            "Big Data".to_string(),
            "Machine Learning".to_string(),
            "Query Optimization".to_string(),
        ];
        b.iter(|| std::hint::black_box(expander.expand_all(&kws)))
    });

    let mut group = c.benchmark_group("e1_expansion/synthetic");
    for topics in [1_000usize, 10_000, 50_000] {
        let ontology = OntologyGenerator::new(GeneratorConfig {
            topics,
            ..Default::default()
        })
        .generate();
        let cfg = ExpansionConfig::default();
        let exp = KeywordExpander::new(&ontology, cfg);
        let seed = format!("synthetic topic {}", topics / 2);
        group.bench_with_input(BenchmarkId::from_parameter(topics), &topics, |b, _| {
            b.iter(|| std::hint::black_box(exp.expand(&seed).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
