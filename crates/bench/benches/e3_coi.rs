//! Bench E3: conflict-of-interest checking at both affiliation
//! granularities.

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_bench::stack;
use minaret_core::coi::{check_coi, AuthorRecord};
use minaret_core::{AffiliationMatchLevel, CoiConfig};
use minaret_scholarly::merge_profiles;

fn bench_e3(c: &mut Criterion) {
    let s = stack(400);
    // Build a realistic author record (with track record) and a candidate
    // pool out of the sources.
    let author_scholar = s
        .world
        .scholars()
        .iter()
        .find(|sc| s.world.papers_of(sc.id).len() >= 3)
        .unwrap();
    let (profiles, _) = s.registry.search_by_name(&author_scholar.full_name());
    let author_profile = merge_profiles(profiles).into_iter().next();
    let inst = s.world.institution(author_scholar.current_affiliation());
    let author = AuthorRecord::from_parts(
        &author_scholar.full_name(),
        Some(&inst.name),
        Some(&inst.country),
        author_profile.as_ref(),
    );
    let authors = vec![author];

    // Candidates: crawl one interest.
    let label = s.world.ontology.label(author_scholar.interests[0]);
    let (found, _) = s.registry.search_by_interest(label);
    let candidates = merge_profiles(found);
    assert!(!candidates.is_empty());

    let mut group = c.benchmark_group("e3_coi");
    for (name, level) in [
        ("university_level", AffiliationMatchLevel::University),
        ("country_level", AffiliationMatchLevel::Country),
    ] {
        let cfg = CoiConfig {
            affiliation_level: level,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut conflicted = 0usize;
                for cand in &candidates {
                    if check_coi(cand, &authors, &cfg).conflicted() {
                        conflicted += 1;
                    }
                }
                std::hint::black_box(conflicted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e3);
criterion_main!(benches);
