//! Bench F2: the three-phase workflow end to end (Figure 2), plus the
//! extraction phase in isolation.
//!
//! The `_telemetry` variant runs the identical workload with metrics and
//! tracing enabled end to end; compare it against the plain variant to
//! measure instrumentation overhead (budget: <3%, see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_bench::{stack, telemetry_stack};
use minaret_telemetry::Telemetry;

fn bench_f2(c: &mut Criterion) {
    let s = stack(500);
    let t = telemetry_stack(500, Telemetry::new());
    let mut group = c.benchmark_group("f2_pipeline");
    group.sample_size(20);
    group.bench_function("recommend_end_to_end_500", |b| {
        b.iter(|| std::hint::black_box(s.minaret.recommend(&s.manuscript).unwrap()))
    });
    group.bench_function("recommend_end_to_end_500_telemetry", |b| {
        b.iter(|| std::hint::black_box(t.minaret.recommend(&t.manuscript).unwrap()))
    });
    group.bench_function("interest_search_fanout", |b| {
        b.iter(|| {
            let (profiles, _) = s.registry.search_by_interest(&s.manuscript.keywords[0]);
            std::hint::black_box(profiles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_f2);
criterion_main!(benches);
