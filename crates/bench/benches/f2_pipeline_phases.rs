//! Bench F2: the three-phase workflow end to end (Figure 2), plus the
//! extraction phase in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_bench::stack;

fn bench_f2(c: &mut Criterion) {
    let s = stack(500);
    let mut group = c.benchmark_group("f2_pipeline");
    group.sample_size(20);
    group.bench_function("recommend_end_to_end_500", |b| {
        b.iter(|| std::hint::black_box(s.minaret.recommend(&s.manuscript).unwrap()))
    });
    group.bench_function("interest_search_fanout", |b| {
        b.iter(|| {
            let (profiles, _) = s.registry.search_by_interest(&s.manuscript.keywords[0]);
            std::hint::black_box(profiles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_f2);
criterion_main!(benches);
