//! Bench E4: one recommendation pass per method — MINARET, the
//! expansion-off ablation, TPMS-style, exact-keyword, random.

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_baselines::{
    crawl_pool, ExactKeywordRecommender, MinaretRecommender, RandomRecommender, Recommender,
    TpmsRecommender,
};
use minaret_bench::stack;
use minaret_core::{EditorConfig, Minaret};
use minaret_ontology::ExpansionConfig;

fn bench_e4(c: &mut Criterion) {
    let s = stack(400);
    let pool = crawl_pool(&s.registry, &s.ontology);
    let methods: Vec<(&str, Box<dyn Recommender>)> = vec![
        (
            "minaret",
            Box::new(MinaretRecommender::new(Minaret::new(
                s.registry.clone(),
                s.ontology.clone(),
                EditorConfig::default(),
            ))),
        ),
        (
            "minaret_no_expansion",
            Box::new(MinaretRecommender::new(Minaret::new(
                s.registry.clone(),
                s.ontology.clone(),
                EditorConfig {
                    expansion: ExpansionConfig {
                        max_hops: 0,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            ))),
        ),
        ("tpms_style", Box::new(TpmsRecommender::new(&pool))),
        (
            "exact_keyword",
            Box::new(ExactKeywordRecommender::new(s.registry.clone())),
        ),
        ("random", Box::new(RandomRecommender::new(&pool, 7))),
    ];
    let mut group = c.benchmark_group("e4_quality");
    group.sample_size(20);
    for (name, method) in &methods {
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(method.recommend(&s.manuscript, 10)))
        });
    }
    group.finish();

    // The pool crawl itself (TPMS's hidden setup cost).
    let mut setup = c.benchmark_group("e4_quality/setup");
    setup.sample_size(10);
    setup.bench_function("crawl_pool", |b| {
        b.iter(|| std::hint::black_box(crawl_pool(&s.registry, &s.ontology)))
    });
    setup.bench_function("tpms_index_build", |b| {
        b.iter(|| std::hint::black_box(TpmsRecommender::new(&pool)))
    });
    setup.finish();
}

criterion_group!(benches, bench_e4);
criterion_main!(benches);
