//! Bench F1: regenerating the DBLP records-per-year series (Figure 1).

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_synth::growth::{GrowthModel, RecordKind};

fn bench_f1(c: &mut Criterion) {
    let model = GrowthModel::default();
    c.bench_function("f1_growth/full_series_all_kinds", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for kind in RecordKind::ALL {
                for (_, v) in model.series(kind, 2018) {
                    total += v;
                }
            }
            std::hint::black_box(total)
        })
    });
    c.bench_function("f1_growth/cumulative_through_2018", |b| {
        b.iter(|| std::hint::black_box(model.cumulative_through(2018)))
    });
}

criterion_group!(benches, bench_f1);
criterion_main!(benches);
