//! Bench E6: extraction fan-out under simulated scraping latency —
//! cold vs. cached, sequential vs. concurrent, and degraded (one dead
//! source behind an open circuit breaker).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_scholarly::{
    BreakerConfig, CachingSource, FaultSchedule, RegistryConfig, ResilienceConfig, ScholarSource,
    SimulatedSource, SourceKind, SourceRegistry, SourceSpec,
};
use minaret_synth::{WorldConfig, WorldGenerator};

const LATENCY_MICROS: u64 = 200;

fn registry(
    concurrent: bool,
    cached: bool,
    dead: bool,
) -> (Arc<minaret_synth::World>, SourceRegistry) {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(300)).generate());
    let resilience = if dead {
        ResilienceConfig {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_micros: 60_000_000,
                probe_successes: 1,
            },
            ..ResilienceConfig::disabled()
        }
    } else {
        ResilienceConfig::disabled()
    };
    let mut reg = SourceRegistry::new(RegistryConfig {
        concurrent,
        resilience,
        ..Default::default()
    });
    for mut spec in SourceSpec::all_defaults() {
        spec.latency_micros = LATENCY_MICROS;
        let kind = spec.kind;
        let mut sim = SimulatedSource::new(spec, world.clone());
        if dead && kind == SourceKind::Publons {
            sim = sim.with_fault(FaultSchedule::PermanentOutage);
        }
        let src: Arc<dyn ScholarSource> = Arc::new(sim);
        if cached {
            reg.register(Arc::new(CachingSource::new(src)));
        } else {
            reg.register(src);
        }
    }
    (world, reg)
}

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_extraction");
    group.sample_size(20);
    for (label, concurrent, cached, dead) in [
        ("sequential_cold", false, false, false),
        ("concurrent_cold", true, false, false),
        ("concurrent_cached", true, true, false),
        ("concurrent_circuit_open", true, false, true),
    ] {
        let (world, reg) = registry(concurrent, cached, dead);
        let name = world.scholars()[0].full_name();
        if dead {
            // Trip the breaker before timing: the steady state under a
            // permanent outage is the open breaker short-circuiting.
            let _ = reg.search_by_name(&name);
        }
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(reg.search_by_name(&name)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
