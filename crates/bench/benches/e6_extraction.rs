//! Bench E6: extraction fan-out under simulated scraping latency —
//! cold vs. cached, sequential vs. concurrent.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use minaret_scholarly::{
    CachingSource, RegistryConfig, ScholarSource, SimulatedSource, SourceRegistry, SourceSpec,
};
use minaret_synth::{WorldConfig, WorldGenerator};

const LATENCY_MICROS: u64 = 200;

fn registry(concurrent: bool, cached: bool) -> (Arc<minaret_synth::World>, SourceRegistry) {
    let world = Arc::new(WorldGenerator::new(WorldConfig::sized(300)).generate());
    let mut reg = SourceRegistry::new(RegistryConfig {
        concurrent,
        ..Default::default()
    });
    for mut spec in SourceSpec::all_defaults() {
        spec.latency_micros = LATENCY_MICROS;
        let src: Arc<dyn ScholarSource> = Arc::new(SimulatedSource::new(spec, world.clone()));
        if cached {
            reg.register(Arc::new(CachingSource::new(src)));
        } else {
            reg.register(src);
        }
    }
    (world, reg)
}

fn bench_e6(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_extraction");
    group.sample_size(20);
    for (label, concurrent, cached) in [
        ("sequential_cold", false, false),
        ("concurrent_cold", true, false),
        ("concurrent_cached", true, true),
    ] {
        let (world, reg) = registry(concurrent, cached);
        let name = world.scholars()[0].full_name();
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(reg.search_by_name(&name)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e6);
criterion_main!(benches);
