//! Name normalization, variants, and compatibility.

use minaret_ontology::normalize_label;

/// A parsed personal name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedName {
    /// Given name(s), normalized; may be a single initial.
    pub given: String,
    /// Family name, normalized.
    pub family: String,
}

/// Parses `"Lei Zhou"`, `"L. Zhou"`, `"Zhou, Lei"` into parts.
///
/// Returns `None` for empty or single-token names without a comma.
pub fn parse_name(raw: &str) -> Option<ParsedName> {
    if let Some((family, given)) = raw.split_once(',') {
        let family = normalize_label(family);
        let given = normalize_label(given);
        if family.is_empty() || given.is_empty() {
            return None;
        }
        return Some(ParsedName { given, family });
    }
    let norm = normalize_label(raw);
    let mut parts: Vec<&str> = norm.split(' ').filter(|s| !s.is_empty()).collect();
    if parts.len() < 2 {
        return None;
    }
    let family = parts.pop().expect("len >= 2").to_string();
    Some(ParsedName {
        given: parts.join(" "),
        family,
    })
}

impl ParsedName {
    /// First character of the given name.
    pub fn initial(&self) -> Option<char> {
        self.given.chars().next()
    }

    /// True when the given name is only an initial (optionally dotted in
    /// the raw form; normalization strips the dot).
    pub fn is_abbreviated(&self) -> bool {
        self.given.chars().count() == 1
    }

    /// The search variants a scraper would try: full form and
    /// initial-form.
    pub fn search_variants(&self) -> Vec<String> {
        let mut v = vec![format!("{} {}", self.given, self.family)];
        if let Some(i) = self.initial() {
            let abbrev = format!("{i} {}", self.family);
            if !v.contains(&abbrev) {
                v.push(abbrev);
            }
        }
        v
    }

    /// True when `self` and `other` can denote the same person: family
    /// names equal and given names equal, or one is the initial of the
    /// other.
    pub fn compatible(&self, other: &ParsedName) -> bool {
        if self.family != other.family {
            return false;
        }
        if self.given == other.given {
            return true;
        }
        match (self.initial(), other.initial()) {
            (Some(a), Some(b)) if a == b => self.is_abbreviated() || other.is_abbreviated(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_given_family() {
        let n = parse_name("Lei Zhou").unwrap();
        assert_eq!(n.given, "lei");
        assert_eq!(n.family, "zhou");
        assert!(!n.is_abbreviated());
    }

    #[test]
    fn parses_comma_form() {
        let n = parse_name("Zhou, Lei").unwrap();
        assert_eq!(n.given, "lei");
        assert_eq!(n.family, "zhou");
    }

    #[test]
    fn parses_initial_form() {
        let n = parse_name("L. Zhou").unwrap();
        assert_eq!(n.given, "l");
        assert!(n.is_abbreviated());
    }

    #[test]
    fn parses_multi_given() {
        let n = parse_name("Mohamed R. Moawad").unwrap();
        assert_eq!(n.given, "mohamed r");
        assert_eq!(n.family, "moawad");
    }

    #[test]
    fn rejects_degenerate_names() {
        assert!(parse_name("").is_none());
        assert!(parse_name("Cher").is_none());
        assert!(parse_name(",").is_none());
    }

    #[test]
    fn variants_cover_full_and_initial() {
        let n = parse_name("Lei Zhou").unwrap();
        assert_eq!(n.search_variants(), vec!["lei zhou", "l zhou"]);
        let a = parse_name("L Zhou").unwrap();
        assert_eq!(a.search_variants(), vec!["l zhou"]);
    }

    #[test]
    fn compatibility_rules() {
        let full = parse_name("Lei Zhou").unwrap();
        let abbr = parse_name("L. Zhou").unwrap();
        let other = parse_name("Ming Zhou").unwrap();
        let other_family = parse_name("Lei Wang").unwrap();
        assert!(full.compatible(&abbr));
        assert!(abbr.compatible(&full));
        assert!(full.compatible(&full));
        assert!(!full.compatible(&other));
        assert!(!full.compatible(&other_family));
        // Two distinct full names sharing an initial are NOT compatible.
        let lin = parse_name("Li Zhou").unwrap();
        assert!(!full.compatible(&lin));
        // But two abbreviated forms with the same initial are.
        let abbr2 = parse_name("L Zhou").unwrap();
        assert!(abbr.compatible(&abbr2));
    }
}
