//! Evidence scoring for identity candidates.

use minaret_ontology::{normalize_label, tokenize};
use minaret_scholarly::MergedCandidate;

/// The individual evidence signals behind a candidate's score, so the
/// demo UI (Figure 4) can show *why* a profile was proposed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evidence {
    /// Token overlap between the typed affiliation and the candidate's,
    /// in `[0, 1]`.
    pub affiliation: f64,
    /// `1.0` when countries match, `0.0` otherwise/unknown.
    pub country: f64,
    /// Fraction of context keywords found among the candidate's
    /// interests or publication keywords.
    pub topical: f64,
    /// Publication activity, log-scaled into `[0, 1]`.
    pub activity: f64,
}

/// Weights fusing [`Evidence`] into one score. Defaults favour the
/// affiliation — the one field the editor actually typed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceWeights {
    /// Weight of the affiliation signal.
    pub affiliation: f64,
    /// Weight of the country signal.
    pub country: f64,
    /// Weight of the topical signal.
    pub topical: f64,
    /// Weight of the activity signal.
    pub activity: f64,
}

impl Default for EvidenceWeights {
    fn default() -> Self {
        Self {
            affiliation: 0.45,
            country: 0.10,
            topical: 0.30,
            activity: 0.15,
        }
    }
}

impl Evidence {
    /// Weighted score in `[0, 1]`.
    pub fn score(&self, w: &EvidenceWeights) -> f64 {
        let total = w.affiliation + w.country + w.topical + w.activity;
        if total <= 0.0 {
            return 0.0;
        }
        (self.affiliation * w.affiliation
            + self.country * w.country
            + self.topical * w.topical
            + self.activity * w.activity)
            / total
    }
}

/// Jaccard similarity of the token sets of two strings.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: std::collections::HashSet<String> = tokenize(a).into_iter().collect();
    let tb: std::collections::HashSet<String> = tokenize(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Collects the evidence for `candidate` given what the editor typed.
pub fn collect_evidence(
    candidate: &MergedCandidate,
    typed_affiliation: Option<&str>,
    typed_country: Option<&str>,
    context_keywords: &[String],
) -> Evidence {
    let affiliation = match (typed_affiliation, candidate.affiliation.as_deref()) {
        (Some(a), Some(b)) => token_jaccard(a, b),
        _ => 0.0,
    };
    let country = match (typed_country, candidate.country.as_deref()) {
        (Some(a), Some(b)) if normalize_label(a) == normalize_label(b) => 1.0,
        _ => 0.0,
    };
    let topical = if context_keywords.is_empty() {
        0.0
    } else {
        let mut hay: std::collections::HashSet<String> = candidate
            .interests
            .iter()
            .map(|i| normalize_label(i))
            .collect();
        for p in &candidate.publications {
            for k in &p.keywords {
                hay.insert(normalize_label(k));
            }
        }
        let hits = context_keywords
            .iter()
            .filter(|k| hay.contains(&normalize_label(k)))
            .count();
        hits as f64 / context_keywords.len() as f64
    };
    let pubs = candidate.publications.len() as f64;
    let activity = (1.0 + pubs).ln() / (1.0 + 100.0f64).ln();
    Evidence {
        affiliation,
        country,
        topical,
        activity: activity.min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_scholarly::SourceMetrics;

    fn candidate(aff: &str, country: &str, interests: &[&str], pubs: usize) -> MergedCandidate {
        MergedCandidate {
            display_name: "X Y".into(),
            affiliation: Some(aff.into()),
            country: Some(country.into()),
            affiliation_history: vec![],
            interests: interests.iter().map(|s| s.to_string()).collect(),
            publications: (0..pubs)
                .map(|i| {
                    std::sync::Arc::new(minaret_scholarly::SourcePublication {
                        title: format!("p{i}"),
                        year: 2015,
                        venue_name: "J".into(),
                        coauthor_names: vec![],
                        keywords: vec![],
                        citations: None,
                    })
                })
                .collect(),
            metrics: SourceMetrics::default(),
            reviews: vec![],
            sources: vec![],
            keys: vec![],
            truths: vec![],
        }
    }

    #[test]
    fn jaccard_basic_properties() {
        assert_eq!(
            token_jaccard("university of tartu", "University of Tartu"),
            1.0
        );
        assert_eq!(token_jaccard("a b", "c d"), 0.0);
        assert!(token_jaccard("university of tartu", "university of beijing") > 0.0);
        assert_eq!(token_jaccard("", ""), 0.0);
    }

    #[test]
    fn matching_affiliation_dominates() {
        let good = candidate("University of Tartu", "Estonia", &[], 5);
        let bad = candidate("University of Beijing", "China", &[], 5);
        let kw: Vec<String> = vec![];
        let w = EvidenceWeights::default();
        let eg = collect_evidence(&good, Some("University of Tartu"), Some("Estonia"), &kw);
        let eb = collect_evidence(&bad, Some("University of Tartu"), Some("Estonia"), &kw);
        assert!(eg.score(&w) > eb.score(&w));
        assert_eq!(eg.affiliation, 1.0);
        assert_eq!(eg.country, 1.0);
    }

    #[test]
    fn topical_overlap_counts_interests_and_pub_keywords() {
        let mut c = candidate("U", "X", &["semantic web"], 1);
        std::sync::Arc::make_mut(&mut c.publications[0]).keywords = vec!["Big Data".into()];
        let kw = vec![
            "Semantic Web".to_string(),
            "big-data".to_string(),
            "quantum".to_string(),
        ];
        let e = collect_evidence(&c, None, None, &kw);
        assert!((e.topical - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn activity_is_log_scaled_and_bounded() {
        let small = candidate("U", "X", &[], 1);
        let big = candidate("U", "X", &[], 500);
        let es = collect_evidence(&small, None, None, &[]);
        let eb = collect_evidence(&big, None, None, &[]);
        assert!(es.activity < eb.activity);
        assert!(eb.activity <= 1.0);
    }

    #[test]
    fn score_bounded_and_zero_weights_safe() {
        let c = candidate("U", "X", &[], 10);
        let e = collect_evidence(&c, Some("U"), Some("X"), &[]);
        assert!((0.0..=1.0).contains(&e.score(&EvidenceWeights::default())));
        let zero = EvidenceWeights {
            affiliation: 0.0,
            country: 0.0,
            topical: 0.0,
            activity: 0.0,
        };
        assert_eq!(e.score(&zero), 0.0);
    }
}
