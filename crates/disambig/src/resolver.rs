//! The identity resolver: search → merge → score → resolve.

use minaret_scholarly::{merge_profiles, MergedCandidate, SourceRegistry};
use minaret_telemetry::Telemetry;

use crate::evidence::{collect_evidence, Evidence, EvidenceWeights};
use crate::name::parse_name;

/// What the editor typed about one author in the manuscript form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorQuery {
    /// Author name as typed (any of "Lei Zhou", "L. Zhou", "Zhou, Lei").
    pub name: String,
    /// Current affiliation as typed, if provided.
    pub affiliation: Option<String>,
    /// Country, if provided.
    pub country: Option<String>,
    /// Manuscript keywords, used as topical context.
    pub context_keywords: Vec<String>,
}

/// One scored identity candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentityMatch {
    /// The merged multi-source candidate.
    pub candidate: MergedCandidate,
    /// The evidence behind the score.
    pub evidence: Evidence,
    /// Fused evidence score in `[0, 1]`.
    pub score: f64,
}

/// The callback type behind [`ResolutionPolicy::Manual`].
pub type ManualChooser = Box<dyn Fn(&[IdentityMatch]) -> Option<usize> + Send + Sync>;

/// How to pick among multiple matches.
///
/// The paper's prototype asks the user ("the user has to manually
/// identify the correct profiles … among the returned matches"); the
/// policies make that decision point explicit and testable.
pub enum ResolutionPolicy {
    /// Always take the highest-scoring candidate (fully automatic).
    AutoTop1,
    /// Take the top candidate only when its score is at least the
    /// threshold *and* it beats the runner-up by the margin; otherwise
    /// report ambiguity.
    Confident {
        /// Minimum top score.
        threshold: f64,
        /// Required score gap to the runner-up.
        margin: f64,
    },
    /// Delegate to a chooser — the stand-in for the human in Figure 4.
    /// Receives the ranked matches, returns the chosen index (or `None`
    /// to reject all).
    Manual(ManualChooser),
}

impl ResolutionPolicy {
    /// Stable label for metrics (`policy="auto_top1"`, ...).
    pub fn label(&self) -> &'static str {
        match self {
            ResolutionPolicy::AutoTop1 => "auto_top1",
            ResolutionPolicy::Confident { .. } => "confident",
            ResolutionPolicy::Manual(_) => "manual",
        }
    }
}

impl std::fmt::Debug for ResolutionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolutionPolicy::AutoTop1 => f.write_str("AutoTop1"),
            ResolutionPolicy::Confident { threshold, margin } => f
                .debug_struct("Confident")
                .field("threshold", threshold)
                .field("margin", margin)
                .finish(),
            ResolutionPolicy::Manual(_) => f.write_str("Manual(..)"),
        }
    }
}

/// How the resolution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionOutcome {
    /// A profile was selected automatically.
    Resolved,
    /// Multiple plausible profiles; a human decision is needed (and the
    /// policy declined to guess).
    Ambiguous,
    /// No profile found on any source.
    NotFound,
}

impl ResolutionOutcome {
    /// Stable label for metrics (`outcome="resolved"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            ResolutionOutcome::Resolved => "resolved",
            ResolutionOutcome::Ambiguous => "ambiguous",
            ResolutionOutcome::NotFound => "not_found",
        }
    }
}

/// The verification result for one author.
#[derive(Debug)]
pub struct VerifiedAuthor {
    /// The original query.
    pub query: AuthorQuery,
    /// Chosen profile, when resolution succeeded.
    pub chosen: Option<IdentityMatch>,
    /// All candidates, best first (including the chosen one).
    pub alternatives: Vec<IdentityMatch>,
    /// How the resolution ended.
    pub outcome: ResolutionOutcome,
}

/// Resolves author identities against the registered sources.
pub struct IdentityResolver<'r> {
    registry: &'r SourceRegistry,
    weights: EvidenceWeights,
    telemetry: Telemetry,
}

impl<'r> IdentityResolver<'r> {
    /// Creates a resolver with default evidence weights and no
    /// telemetry.
    pub fn new(registry: &'r SourceRegistry) -> Self {
        Self {
            registry,
            weights: EvidenceWeights::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Overrides the evidence weights.
    pub fn with_weights(mut self, weights: EvidenceWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Reports `minaret_resolution_outcomes_total{policy,outcome}` and
    /// candidate-count histograms to `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Ranks identity candidates for `query` without resolving.
    pub fn candidates(&self, query: &AuthorQuery) -> Vec<IdentityMatch> {
        let Some(parsed) = parse_name(&query.name) else {
            return Vec::new();
        };
        let mut profiles = Vec::new();
        for variant in parsed.search_variants() {
            let (mut found, _errors) = self.registry.search_by_name(&variant);
            profiles.append(&mut found);
        }
        // The same profile may return under several variants; dedupe by
        // (source, key) before merging.
        profiles.sort_by(|a, b| (a.source, &a.key).cmp(&(b.source, &b.key)));
        profiles.dedup_by(|a, b| a.source == b.source && a.key == b.key);
        // Keep only name-compatible profiles (an initial search can pull
        // in other scholars sharing the initial).
        profiles.retain(|p| {
            parse_name(&p.display_name)
                .map(|n| n.compatible(&parsed))
                .unwrap_or(false)
        });
        let merged = merge_profiles(profiles);
        let mut matches: Vec<IdentityMatch> = merged
            .into_iter()
            .map(|candidate| {
                let evidence = collect_evidence(
                    &candidate,
                    query.affiliation.as_deref(),
                    query.country.as_deref(),
                    &query.context_keywords,
                );
                let score = evidence.score(&self.weights);
                IdentityMatch {
                    candidate,
                    evidence,
                    score,
                }
            })
            .collect();
        matches.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.candidate.keys.cmp(&b.candidate.keys))
        });
        matches
    }

    /// Counts one resolution by policy and outcome.
    fn note_outcome(&self, policy: &ResolutionPolicy, outcome: ResolutionOutcome) {
        self.telemetry
            .counter(
                "minaret_resolution_outcomes_total",
                &[("policy", policy.label()), ("outcome", outcome.label())],
            )
            .inc();
    }

    /// Resolves one author with the given policy.
    pub fn resolve(&self, query: AuthorQuery, policy: &ResolutionPolicy) -> VerifiedAuthor {
        let alternatives = self.candidates(&query);
        self.telemetry
            .histogram("minaret_resolution_candidates", &[])
            .observe(alternatives.len() as u64);
        if alternatives.is_empty() {
            self.note_outcome(policy, ResolutionOutcome::NotFound);
            return VerifiedAuthor {
                query,
                chosen: None,
                alternatives,
                outcome: ResolutionOutcome::NotFound,
            };
        }
        let chosen_idx = match policy {
            ResolutionPolicy::AutoTop1 => Some(0),
            ResolutionPolicy::Confident { threshold, margin } => {
                let top = alternatives[0].score;
                let runner_up = alternatives.get(1).map(|m| m.score).unwrap_or(0.0);
                if top >= *threshold && top - runner_up >= *margin {
                    Some(0)
                } else {
                    None
                }
            }
            ResolutionPolicy::Manual(choose) => choose(&alternatives),
        };
        match chosen_idx {
            Some(i) if i < alternatives.len() => {
                self.note_outcome(policy, ResolutionOutcome::Resolved);
                VerifiedAuthor {
                    query,
                    chosen: Some(alternatives[i].clone()),
                    alternatives,
                    outcome: ResolutionOutcome::Resolved,
                }
            }
            _ => {
                self.note_outcome(policy, ResolutionOutcome::Ambiguous);
                VerifiedAuthor {
                    query,
                    chosen: None,
                    alternatives,
                    outcome: ResolutionOutcome::Ambiguous,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_scholarly::{RegistryConfig, SimulatedSource, SourceSpec};
    use minaret_synth::{World, WorldConfig, WorldGenerator};
    use std::sync::Arc;

    fn setup(collision_rate: f64) -> (Arc<World>, SourceRegistry) {
        let world = Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars: 250,
                name_collision_rate: collision_rate,
                ..Default::default()
            })
            .generate(),
        );
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        (world, reg)
    }

    fn query_for(world: &World, id: minaret_synth::ScholarId) -> AuthorQuery {
        let s = world.scholar(id);
        let inst = world.institution(s.current_affiliation());
        AuthorQuery {
            name: s.full_name(),
            affiliation: Some(inst.name.clone()),
            country: Some(inst.country.clone()),
            context_keywords: s
                .interests
                .iter()
                .map(|&t| world.ontology.label(t).to_string())
                .collect(),
        }
    }

    #[test]
    fn unambiguous_author_resolves_to_truth() {
        let (world, reg) = setup(0.0);
        let resolver = IdentityResolver::new(&reg);
        // Find a scholar with a unique name in the world.
        let mut counts = std::collections::HashMap::new();
        for s in world.scholars() {
            *counts.entry(s.full_name()).or_insert(0) += 1;
        }
        let unique = world
            .scholars()
            .iter()
            .find(|s| counts[&s.full_name()] == 1 && !world.papers_of(s.id).is_empty())
            .unwrap();
        let v = resolver.resolve(query_for(&world, unique.id), &ResolutionPolicy::AutoTop1);
        assert_eq!(v.outcome, ResolutionOutcome::Resolved);
        let chosen = v.chosen.unwrap();
        assert_eq!(chosen.candidate.dominant_truth(), Some(unique.id));
    }

    #[test]
    fn collisions_yield_multiple_candidates() {
        let (world, reg) = setup(0.5);
        let resolver = IdentityResolver::new(&reg);
        let mut counts = std::collections::HashMap::new();
        for s in world.scholars() {
            *counts.entry(s.full_name()).or_insert(0) += 1;
        }
        let collided = world
            .scholars()
            .iter()
            .find(|s| counts[&s.full_name()] >= 3)
            .expect("0.5 collision rate produces shared names");
        let cands = resolver.candidates(&query_for(&world, collided.id));
        assert!(
            cands.len() >= 2,
            "expected multiple identity candidates, got {}",
            cands.len()
        );
    }

    #[test]
    fn affiliation_evidence_ranks_the_right_person_first() {
        let (world, reg) = setup(0.5);
        let resolver = IdentityResolver::new(&reg);
        let mut counts = std::collections::HashMap::new();
        for s in world.scholars() {
            *counts.entry(s.full_name()).or_insert(0) += 1;
        }
        // For colliding scholars at *different* institutions, the typed
        // affiliation should pick the right one most of the time.
        let mut checked = 0;
        let mut correct = 0;
        for s in world.scholars() {
            if counts[&s.full_name()] < 2 || world.papers_of(s.id).is_empty() {
                continue;
            }
            let v = resolver.resolve(query_for(&world, s.id), &ResolutionPolicy::AutoTop1);
            if let Some(chosen) = v.chosen {
                checked += 1;
                if chosen.candidate.truths.contains(&s.id) {
                    correct += 1;
                }
            }
            if checked >= 30 {
                break;
            }
        }
        assert!(checked >= 10, "not enough collision cases");
        assert!(
            correct as f64 / checked as f64 > 0.6,
            "disambiguation accuracy too low: {correct}/{checked}"
        );
    }

    #[test]
    fn confident_policy_reports_ambiguity() {
        let (world, reg) = setup(0.5);
        let resolver = IdentityResolver::new(&reg);
        let policy = ResolutionPolicy::Confident {
            threshold: 0.99,
            margin: 0.5,
        };
        // With an impossible threshold everything with candidates is
        // ambiguous.
        let s = world
            .scholars()
            .iter()
            .find(|s| !world.papers_of(s.id).is_empty())
            .unwrap();
        let v = resolver.resolve(query_for(&world, s.id), &policy);
        assert_eq!(v.outcome, ResolutionOutcome::Ambiguous);
        assert!(v.chosen.is_none());
        assert!(!v.alternatives.is_empty());
    }

    #[test]
    fn manual_policy_gets_the_ranked_list() {
        let (world, reg) = setup(0.0);
        let resolver = IdentityResolver::new(&reg);
        let s = &world.scholars()[0];
        let picked = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(usize::MAX));
        let picked2 = picked.clone();
        let policy = ResolutionPolicy::Manual(Box::new(move |ms| {
            picked2.store(ms.len(), std::sync::atomic::Ordering::SeqCst);
            Some(0)
        }));
        let v = resolver.resolve(query_for(&world, s.id), &policy);
        assert_eq!(v.outcome, ResolutionOutcome::Resolved);
        assert!(picked.load(std::sync::atomic::Ordering::SeqCst) >= 1);
    }

    #[test]
    fn unknown_names_are_not_found() {
        let (_, reg) = setup(0.0);
        let resolver = IdentityResolver::new(&reg);
        let v = resolver.resolve(
            AuthorQuery {
                name: "Zaphod Beeblebrox".into(),
                affiliation: None,
                country: None,
                context_keywords: vec![],
            },
            &ResolutionPolicy::AutoTop1,
        );
        assert_eq!(v.outcome, ResolutionOutcome::NotFound);
    }

    #[test]
    fn telemetry_counts_outcomes_by_policy() {
        let (world, reg) = setup(0.0);
        let telemetry = minaret_telemetry::Telemetry::new();
        let resolver = IdentityResolver::new(&reg).with_telemetry(telemetry.clone());
        let s = world
            .scholars()
            .iter()
            .find(|s| !world.papers_of(s.id).is_empty())
            .unwrap();
        resolver.resolve(query_for(&world, s.id), &ResolutionPolicy::AutoTop1);
        resolver.resolve(
            query_for(&world, s.id),
            &ResolutionPolicy::Confident {
                threshold: 0.99,
                margin: 0.5,
            },
        );
        resolver.resolve(
            AuthorQuery {
                name: "Zaphod Beeblebrox".into(),
                affiliation: None,
                country: None,
                context_keywords: vec![],
            },
            &ResolutionPolicy::AutoTop1,
        );
        let text = telemetry.encode_prometheus();
        assert!(
            text.contains(
                "minaret_resolution_outcomes_total{outcome=\"resolved\",policy=\"auto_top1\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "minaret_resolution_outcomes_total{outcome=\"ambiguous\",policy=\"confident\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "minaret_resolution_outcomes_total{outcome=\"not_found\",policy=\"auto_top1\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("minaret_resolution_candidates_count 3"),
            "{text}"
        );
    }

    #[test]
    fn garbage_name_yields_not_found() {
        let (_, reg) = setup(0.0);
        let resolver = IdentityResolver::new(&reg);
        let v = resolver.resolve(
            AuthorQuery {
                name: "???".into(),
                affiliation: None,
                country: None,
                context_keywords: vec![],
            },
            &ResolutionPolicy::AutoTop1,
        );
        assert_eq!(v.outcome, ResolutionOutcome::NotFound);
    }
}
