//! Author identity verification for MINARET.
//!
//! §2.1 of the paper: "This step is concerned with the disambiguation of
//! authors' names … The identification of the correct author profile is
//! crucial as it influences the accuracy of the collected information …
//! In case of multiple matches, the user has to manually identify the
//! correct profiles."
//!
//! This crate resolves a manuscript author (name + affiliation as typed
//! into the details form) against the scholarly sources:
//!
//! 1. name variants are generated ([`name`]) and searched across sources;
//! 2. per-source profiles are merged into candidates;
//! 3. each candidate is scored on evidence — affiliation match, country
//!    match, topical overlap with the manuscript keywords, publication
//!    activity ([`evidence`]);
//! 4. a [`ResolutionPolicy`] picks the profile: automatically when the
//!    evidence is decisive, or via an injected chooser standing in for
//!    the human in the demo's Figure 4 dialog.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod evidence;
pub mod name;
mod resolver;

pub use resolver::{
    AuthorQuery, IdentityMatch, IdentityResolver, ManualChooser, ResolutionOutcome,
    ResolutionPolicy, VerifiedAuthor,
};
