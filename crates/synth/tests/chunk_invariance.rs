//! Chunked streaming generation must be byte-identical to the
//! monolithic path — for ANY chunk size. Per-entity seed derivation
//! makes every scholar/paper/review a pure function of (world seed,
//! entity index), so where the chunk boundaries fall cannot matter.

use minaret_synth::{
    stream_snapshot_world, world_fingerprint, StreamingGenerator, WorldConfig, WorldGenerator,
};
use proptest::prelude::*;

proptest! {
    // World generation is the expensive part; a handful of cases over
    // randomized (size, chunk, seed, collision-rate) corners is plenty.
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]
    #[test]
    fn chunked_generation_matches_monolithic_for_any_chunk_size(
        scholars in 1usize..300,
        chunk_size in 1usize..600,
        seed in 0u64..1_000_000,
        collision in 0.0f64..0.6,
    ) {
        let cfg = WorldConfig {
            seed,
            name_collision_rate: collision,
            ..WorldConfig::sized(scholars)
        };
        let world = WorldGenerator::new(cfg.clone()).generate();
        let gen = StreamingGenerator::new(cfg);
        let mut gen_scholars = Vec::new();
        let mut gen_papers = Vec::new();
        let mut gen_reviews = Vec::new();
        for chunk in gen.chunks(chunk_size) {
            prop_assert_eq!(chunk.start, gen_scholars.len());
            gen_scholars.extend(chunk.scholars);
            gen_papers.extend(chunk.papers);
            gen_reviews.extend(chunk.reviews);
        }
        prop_assert_eq!(&gen_scholars[..], world.scholars());
        prop_assert_eq!(&gen_papers[..], world.papers());
        prop_assert_eq!(&gen_reviews[..], world.reviews());
    }
}

#[test]
fn streamed_snapshot_fingerprints_equal_monolithic_across_block_boundaries() {
    use minaret_store::{Store, StoreConfig};
    // 2600 scholars span three community blocks, so coauthor and paper
    // references cross chunk writes; the loaded world must still
    // fingerprint identically to the in-memory generation.
    let dir = std::env::temp_dir().join(format!("minaret-chunkfp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = WorldConfig {
        seed: 0xfeed,
        ..WorldConfig::sized(2600)
    };
    let world = WorldGenerator::new(cfg.clone()).generate();
    let store = Store::open(&dir, StoreConfig::default()).unwrap();
    stream_snapshot_world(&store, &StreamingGenerator::new(cfg), |_| {}).unwrap();
    let (loaded, _) = minaret_synth::persist::load_world_streamed(&store)
        .unwrap()
        .expect("streamed snapshot present");
    assert_eq!(world_fingerprint(&loaded), world_fingerprint(&world));
    drop(store);
    std::fs::remove_dir_all(dir).unwrap();
}
