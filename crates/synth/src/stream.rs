//! Streaming, chunk-size-invariant world generation.
//!
//! The monolithic generator walked one RNG through every entity, so the
//! whole world had to exist before any of it could be used. Here every
//! entity is a *pure function* of `(config, ontology, index)`: each
//! scholar, paper stream, and review stream draws from its own RNG whose
//! seed is derived from the world seed, a stream tag, and the entity
//! index ([`derive_seed`]). Chunk boundaries therefore cannot influence
//! content — a world emitted in chunks of any size is byte-identical to
//! the monolithic path, which the fingerprint tests pin.
//!
//! Cross-entity structure that the old generator expressed through
//! shared mutable state is re-expressed locally:
//!
//! - **Names** collide via redirect chains: scholar `i` duplicates the
//!   resolved name of a uniformly chosen earlier scholar `j < i` with
//!   probability `name_collision_rate`. Resolution follows the chain
//!   (`i → j → …`) of pure draws, so popular names accumulate weight
//!   just like the old issued-name pool.
//! - **Coauthorship** is community-local: scholars live in fixed blocks
//!   of [`COMMUNITY_BLOCK`], and a paper's coauthors are drawn only from
//!   the lead author's block (preferential attachment over the lead's
//!   own prior coauthors, then topic matches inside the block). Blocks
//!   are a property of the world, not of the chunking, and they are what
//!   makes lazy per-block reads self-contained.
//! - **Paper ids and titles** use a running counter that depends only on
//!   scholar order; papers are emitted scholar-major (all of a scholar's
//!   papers together, year ascending), so every scholar's papers are
//!   contiguous in the global table.

use std::collections::HashMap;

use minaret_ontology::{Ontology, TopicId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::WorldConfig;
use crate::generator::poisson;
use crate::ids::{InstitutionId, PaperId, ScholarId, VenueId};
use crate::model::{AffiliationSpan, Institution, Paper, ReviewRecord, Scholar, Venue, VenueKind};
use crate::names::{base_pair, institution_country, institution_name, pair_strings};
use crate::world::World;

/// Scholars per community block — the coauthor-locality unit. A paper
/// led by a scholar only ever draws coauthors from the lead's block, so
/// any block can be generated (or decoded from a snapshot) on its own.
/// This is a property of the generated world and is independent of the
/// chunk size callers stream with.
pub const COMMUNITY_BLOCK: usize = 1024;

/// Per-entity RNG stream tags (mixed into [`derive_seed`]).
mod tag {
    pub const VENUES: u64 = 1;
    pub const NAME: u64 = 2;
    pub const CAREER: u64 = 3;
    pub const INTERESTS: u64 = 4;
    pub const PAPERS: u64 = 5;
    pub const REVIEWS: u64 = 6;
}

/// Mixes `(seed, stream, index)` into an independent RNG seed with the
/// splitmix64 finalizer. Every generated entity seeds its own `StdRng`
/// from this, which is what makes generation order-free.
pub fn derive_seed(seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One contiguous slice of a streamed world: `scholars[..]` are ids
/// `start .. start + scholars.len()`, `papers` are every paper whose
/// lead author is in the chunk (globally ordered, contiguous ids), and
/// `reviews` are those scholars' review records.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldChunk {
    /// Chunk ordinal (0-based) in emission order.
    pub index: usize,
    /// Id of the first scholar in the chunk.
    pub start: usize,
    /// The chunk's scholars, in id order.
    pub scholars: Vec<Scholar>,
    /// Papers led by the chunk's scholars, in global id order.
    pub papers: Vec<Paper>,
    /// Review records of the chunk's scholars, reviewer-major.
    pub reviews: Vec<ReviewRecord>,
}

/// Generates a world incrementally, in chunks of any size, with output
/// byte-identical to [`crate::WorldGenerator::generate`].
#[derive(Debug, Clone)]
pub struct StreamingGenerator {
    cfg: WorldConfig,
    ontology: Ontology,
    topic_pool: Vec<TopicId>,
    institutions: Vec<Institution>,
    venues: Vec<Venue>,
    venues_by_topic: HashMap<TopicId, Vec<VenueId>>,
}

impl StreamingGenerator {
    /// A generator over the curated CS ontology.
    pub fn new(cfg: WorldConfig) -> Self {
        Self::with_ontology(cfg, minaret_ontology::seed::curated_cs_ontology())
    }

    /// A generator over a caller-provided ontology. Venues and
    /// institutions (small, world-global tables) are generated eagerly
    /// here; scholars, papers, and reviews stream through
    /// [`StreamingGenerator::chunks`].
    pub fn with_ontology(cfg: WorldConfig, ontology: Ontology) -> Self {
        let topic_pool: Vec<TopicId> = ontology.topics().map(|t| t.id).collect();
        let institutions: Vec<Institution> = (0..cfg.institutions.max(1))
            .map(|i| Institution {
                id: InstitutionId(i as u32),
                name: institution_name(i),
                country: institution_country(i),
            })
            .collect();
        let venues = gen_venues(&cfg, &topic_pool);
        let mut venues_by_topic: HashMap<TopicId, Vec<VenueId>> = HashMap::new();
        for v in &venues {
            for &t in &v.topics {
                venues_by_topic.entry(t).or_default().push(v.id);
            }
        }
        Self {
            cfg,
            ontology,
            topic_pool,
            institutions,
            venues,
            venues_by_topic,
        }
    }

    /// The generation config.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// The ontology the world is generated against.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// The world's venues (generated eagerly; shared by every chunk).
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// The world's institutions (generated eagerly).
    pub fn institutions(&self) -> &[Institution] {
        &self.institutions
    }

    /// Streams the world in chunks of `chunk_size` scholars. Peak memory
    /// for the caller is one chunk plus one community block of context.
    /// The concatenation of all chunks is byte-identical for every
    /// `chunk_size`.
    pub fn chunks(&self, chunk_size: usize) -> ChunkIter<'_> {
        ChunkIter {
            gen: self,
            chunk_size: chunk_size.max(1),
            next_scholar: 0,
            next_paper: 0,
            next_chunk: 0,
            block: None,
        }
    }

    /// Materializes the whole world at once (the monolithic path used by
    /// [`crate::WorldGenerator`]); internally just drains the chunk
    /// stream.
    pub fn generate_world(self) -> World {
        let mut scholars = Vec::with_capacity(self.cfg.scholars);
        let mut papers = Vec::new();
        let mut reviews = Vec::new();
        for chunk in self.chunks(COMMUNITY_BLOCK) {
            scholars.extend(chunk.scholars);
            papers.extend(chunk.papers);
            reviews.extend(chunk.reviews);
        }
        World::assemble(
            self.ontology,
            self.cfg.end_year,
            scholars,
            papers,
            self.venues,
            self.institutions,
            reviews,
        )
    }

    /// Resolves scholar `i`'s name through the collision redirect chain.
    fn name_of(&self, i: usize) -> (String, String) {
        let rate = self.cfg.name_collision_rate.clamp(0.0, 1.0);
        let mut at = i;
        loop {
            let mut rng = StdRng::seed_from_u64(derive_seed(self.cfg.seed, tag::NAME, at as u64));
            if at > 0 && rng.gen::<f64>() < rate {
                // Duplicate an earlier scholar's (resolved) name. The
                // redirect target strictly decreases, so chains always
                // terminate at a base draw.
                at = rng.gen_range(0..at);
                continue;
            }
            return pair_strings(base_pair(&mut rng));
        }
    }

    /// Generates scholar `i` — a pure function of `(config, ontology, i)`.
    fn scholar_at(&self, i: usize) -> Scholar {
        let cfg = &self.cfg;
        let (given, family) = self.name_of(i);

        // Career: start year and the mobility walk over institutions.
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, tag::CAREER, i as u64));
        let n_institutions = self.institutions.len();
        let active_since = rng.gen_range(cfg.start_year..=cfg.end_year.saturating_sub(1));
        let mut affiliations = Vec::new();
        let mut inst = rng.gen_range(0..n_institutions);
        let mut from = active_since;
        for year in active_since..=cfg.end_year {
            if year > from && rng.gen::<f64>() < cfg.mobility_rate {
                affiliations.push(AffiliationSpan {
                    institution: InstitutionId(inst as u32),
                    from_year: from,
                    to_year: year - 1,
                });
                let mut next = rng.gen_range(0..n_institutions);
                if n_institutions > 1 {
                    while next == inst {
                        next = rng.gen_range(0..n_institutions);
                    }
                }
                inst = next;
                from = year;
            }
        }
        affiliations.push(AffiliationSpan {
            institution: InstitutionId(inst as u32),
            from_year: from,
            to_year: cfg.end_year,
        });

        // Interests: one "home" topic plus semantically nearby topics,
        // so scholars are topically coherent like real researchers.
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, tag::INTERESTS, i as u64));
        let home = self.topic_pool[rng.gen_range(0..self.topic_pool.len())];
        let mut interests = vec![home];
        let mut frontier: Vec<TopicId> = self
            .ontology
            .related(home)
            .iter()
            .chain(self.ontology.parents(home))
            .chain(self.ontology.children(home))
            .copied()
            .collect();
        while interests.len() < cfg.interests_per_scholar.max(1) {
            let t = if !frontier.is_empty() && rng.gen::<f64>() < 0.7 {
                frontier.swap_remove(rng.gen_range(0..frontier.len()))
            } else {
                self.topic_pool[rng.gen_range(0..self.topic_pool.len())]
            };
            if !interests.contains(&t) {
                interests.push(t);
            }
            if frontier.is_empty() && interests.len() >= 2 && rng.gen::<f64>() < 0.1 {
                break;
            }
        }

        Scholar {
            id: ScholarId(i as u32),
            given_name: given,
            family_name: family,
            affiliations,
            interests,
            active_since,
        }
    }

    /// Generates the community block containing scholars
    /// `[b * COMMUNITY_BLOCK, …)` plus its topic index.
    fn block_at(&self, b: usize) -> BlockBuf {
        let start = b * COMMUNITY_BLOCK;
        let end = (start + COMMUNITY_BLOCK).min(self.cfg.scholars);
        let scholars: Vec<Scholar> = (start..end).map(|i| self.scholar_at(i)).collect();
        let mut by_topic: HashMap<TopicId, Vec<ScholarId>> = HashMap::new();
        for s in &scholars {
            for &t in &s.interests {
                by_topic.entry(t).or_default().push(s.id);
            }
        }
        BlockBuf {
            index: b,
            start,
            scholars,
            by_topic,
        }
    }

    /// All papers led by `lead`, year ascending, with ids starting at
    /// `first_paper`. Coauthors come from the lead's community block.
    fn papers_for(&self, lead: &Scholar, block: &BlockBuf, first_paper: u32) -> Vec<Paper> {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, tag::PAPERS, lead.id.0 as u64));
        let mut papers = Vec::new();
        // Preferential attachment over the lead's own prior coauthors.
        let mut prior: Vec<ScholarId> = Vec::new();
        for year in lead.active_since..=cfg.end_year {
            for _ in 0..poisson(&mut rng, cfg.papers_per_scholar_year) {
                // Paper topics: 1-3 of the lead's interests.
                let n_topics = rng.gen_range(1..=3.min(lead.interests.len()));
                let mut topics = Vec::with_capacity(n_topics);
                while topics.len() < n_topics {
                    let t = lead.interests[rng.gen_range(0..lead.interests.len())];
                    if !topics.contains(&t) {
                        topics.push(t);
                    }
                }
                let n_co = poisson(&mut rng, cfg.coauthors_per_paper).min(6);
                let mut authors = vec![lead.id];
                for _ in 0..n_co {
                    let cand = if !prior.is_empty() && rng.gen::<f64>() < 0.5 {
                        Some(prior[rng.gen_range(0..prior.len())])
                    } else {
                        block
                            .by_topic
                            .get(&topics[rng.gen_range(0..topics.len())])
                            .filter(|v| !v.is_empty())
                            .map(|v| v[rng.gen_range(0..v.len())])
                    };
                    if let Some(c) = cand {
                        if !authors.contains(&c)
                            && block.scholars[c.index() - block.start].active_since <= year
                        {
                            authors.push(c);
                        }
                    }
                }
                for &a in authors.iter().skip(1) {
                    if !prior.contains(&a) {
                        prior.push(a);
                    }
                }
                // Venue: one that covers a paper topic when possible.
                let venue = topics
                    .iter()
                    .filter_map(|t| self.venues_by_topic.get(t))
                    .flat_map(|v| v.iter())
                    .next()
                    .copied()
                    .unwrap_or_else(|| VenueId(rng.gen_range(0..self.venues.len()) as u32));
                // Citations: heavy-tailed, growing with age.
                let age = (cfg.end_year - year) as f64;
                let burst = (-(rng.gen::<f64>().max(1e-12)).ln()).powf(2.0);
                let citations = (burst * (1.0 + age * 1.5)) as u32;
                let id = first_paper + papers.len() as u32;
                papers.push(Paper {
                    id: PaperId(id),
                    title: format!("On synthetic result #{id} ({year})"),
                    year,
                    venue,
                    authors,
                    topics,
                    citations,
                });
            }
        }
        papers
    }

    /// All review records of `reviewer`, year ascending.
    fn reviews_for(&self, reviewer: &Scholar) -> Vec<ReviewRecord> {
        let cfg = &self.cfg;
        let mut rng =
            StdRng::seed_from_u64(derive_seed(cfg.seed, tag::REVIEWS, reviewer.id.0 as u64));
        if rng.gen::<f64>() >= cfg.reviewer_fraction {
            return Vec::new();
        }
        let mut reviews = Vec::new();
        for year in reviewer.active_since..=cfg.end_year {
            for _ in 0..poisson(&mut rng, cfg.reviews_per_reviewer_year) {
                // Review for a venue in the scholar's area when possible.
                let venue = reviewer
                    .interests
                    .iter()
                    .filter_map(|t| self.venues_by_topic.get(t))
                    .filter(|v| !v.is_empty())
                    .map(|v| v[rng.gen_range(0..v.len())])
                    .next()
                    .unwrap_or_else(|| VenueId(rng.gen_range(0..self.venues.len()) as u32));
                let turnaround_days = 7 + (rng.gen::<f64>() * 60.0) as u32;
                // Quality is a per-scholar trait with per-review noise.
                let base = 2.0 + 3.0 * (reviewer.id.0 as f64 * 0.618).fract();
                let quality = (base + rng.gen_range(-1.0..1.0)).round().clamp(1.0, 5.0) as u8;
                reviews.push(ReviewRecord {
                    reviewer: reviewer.id,
                    venue,
                    year,
                    turnaround_days,
                    quality,
                });
            }
        }
        reviews
    }
}

/// One generated community block plus the topic index coauthor draws use.
#[derive(Debug)]
struct BlockBuf {
    index: usize,
    start: usize,
    scholars: Vec<Scholar>,
    by_topic: HashMap<TopicId, Vec<ScholarId>>,
}

/// Iterator over [`WorldChunk`]s; see [`StreamingGenerator::chunks`].
#[derive(Debug)]
pub struct ChunkIter<'a> {
    gen: &'a StreamingGenerator,
    chunk_size: usize,
    next_scholar: usize,
    next_paper: u32,
    next_chunk: usize,
    block: Option<BlockBuf>,
}

impl Iterator for ChunkIter<'_> {
    type Item = WorldChunk;

    fn next(&mut self) -> Option<WorldChunk> {
        let n = self.gen.cfg.scholars;
        if self.next_scholar >= n {
            return None;
        }
        let start = self.next_scholar;
        let end = (start + self.chunk_size).min(n);
        let mut scholars = Vec::with_capacity(end - start);
        let mut papers = Vec::new();
        let mut reviews = Vec::new();
        for i in start..end {
            let b = i / COMMUNITY_BLOCK;
            if self.block.as_ref().map(|blk| blk.index) != Some(b) {
                self.block = Some(self.gen.block_at(b));
            }
            let block = self.block.as_ref().expect("block just ensured");
            let s = &block.scholars[i - block.start];
            let ps = self.gen.papers_for(s, block, self.next_paper);
            self.next_paper += ps.len() as u32;
            papers.extend(ps);
            reviews.extend(self.gen.reviews_for(s));
            scholars.push(s.clone());
        }
        self.next_scholar = end;
        let index = self.next_chunk;
        self.next_chunk += 1;
        Some(WorldChunk {
            index,
            start,
            scholars,
            papers,
            reviews,
        })
    }
}

fn gen_venues(cfg: &WorldConfig, topic_pool: &[TopicId]) -> Vec<Venue> {
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, tag::VENUES, 0));
    let mut venues = Vec::with_capacity(cfg.journals + cfg.conferences);
    for i in 0..cfg.journals + cfg.conferences {
        let kind = if i < cfg.journals {
            VenueKind::Journal
        } else {
            VenueKind::Conference
        };
        let n_topics = rng.gen_range(2..=4).min(topic_pool.len());
        let mut topics = Vec::with_capacity(n_topics);
        while topics.len() < n_topics {
            let t = topic_pool[rng.gen_range(0..topic_pool.len())];
            if !topics.contains(&t) {
                topics.push(t);
            }
        }
        let name = match kind {
            VenueKind::Journal => format!("Journal of Synthetic Computing {}", i + 1),
            VenueKind::Conference => {
                format!(
                    "International Conference on Synthetic Systems {}",
                    i + 1 - cfg.journals
                )
            }
        };
        venues.push(Venue {
            id: VenueId(i as u32),
            name,
            kind,
            topics,
        });
    }
    venues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(scholars: usize) -> StreamingGenerator {
        StreamingGenerator::new(WorldConfig {
            scholars,
            institutions: 10,
            journals: 5,
            conferences: 5,
            ..Default::default()
        })
    }

    #[test]
    fn derive_seed_separates_streams_and_indexes() {
        let a = derive_seed(7, tag::NAME, 0);
        let b = derive_seed(7, tag::NAME, 1);
        let c = derive_seed(7, tag::CAREER, 0);
        let d = derive_seed(8, tag::NAME, 0);
        assert!(a != b && a != c && a != d && b != c);
        assert_eq!(a, derive_seed(7, tag::NAME, 0));
    }

    #[test]
    fn chunks_concatenate_to_the_monolithic_world() {
        for chunk_size in [1, 7, 50, 120, 1000] {
            let g = gen(120);
            let mut scholars = Vec::new();
            let mut papers = Vec::new();
            let mut reviews = Vec::new();
            for c in g.chunks(chunk_size) {
                assert_eq!(c.start, scholars.len());
                scholars.extend(c.scholars);
                papers.extend(c.papers);
                reviews.extend(c.reviews);
            }
            let w = gen(120).generate_world();
            assert_eq!(scholars, w.scholars(), "chunk_size {chunk_size}");
            assert_eq!(papers, w.papers(), "chunk_size {chunk_size}");
            assert_eq!(reviews, w.reviews(), "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn paper_ids_are_contiguous_and_scholar_major() {
        let g = gen(200);
        let mut next = 0u32;
        let mut last_lead = None;
        for c in g.chunks(64) {
            for p in &c.papers {
                assert_eq!(p.id.0, next);
                next += 1;
                // Scholar-major: lead ids never decrease.
                let lead = p.authors[0];
                if let Some(prev) = last_lead {
                    assert!(lead >= prev);
                }
                last_lead = Some(lead);
            }
        }
    }

    #[test]
    fn coauthors_stay_in_the_leads_community_block() {
        let g = StreamingGenerator::new(WorldConfig::sized(COMMUNITY_BLOCK + 200));
        for c in g.chunks(500) {
            for p in &c.papers {
                let lead_block = p.authors[0].index() / COMMUNITY_BLOCK;
                for a in &p.authors {
                    assert_eq!(
                        a.index() / COMMUNITY_BLOCK,
                        lead_block,
                        "coauthor crossed a community block"
                    );
                }
            }
        }
    }

    #[test]
    fn full_collision_rate_collapses_names_to_scholar_zero() {
        let g = StreamingGenerator::new(WorldConfig {
            scholars: 40,
            name_collision_rate: 1.0,
            ..Default::default()
        });
        let first = g.name_of(0);
        for i in 1..40 {
            assert_eq!(g.name_of(i), first);
        }
    }

    #[test]
    fn zero_collision_rate_keeps_names_mostly_unique() {
        let g = StreamingGenerator::new(WorldConfig {
            scholars: 200,
            name_collision_rate: 0.0,
            ..Default::default()
        });
        let names: std::collections::HashSet<_> = (0..200).map(|i| g.name_of(i)).collect();
        assert!(names.len() > 100, "expected mostly unique names");
    }

    #[test]
    fn chunk_iteration_is_restartable_and_deterministic() {
        let g = gen(90);
        let a: Vec<WorldChunk> = g.chunks(40).collect();
        let b: Vec<WorldChunk> = g.chunks(40).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].scholars.len(), 10);
    }
}
