//! Uniform read access to a world, whether fully materialized or lazy.
//!
//! [`WorldScope`] is the exact read surface a simulated source needs to
//! build one scholar's profile: the scholar itself, its papers and
//! reviews, and name/label lookups for the entities those reference.
//! The eager [`World`] implements it over its derived tables; a lazy
//! world implements it over one decoded [`crate::WorldBlock`]
//! (coauthors never cross community blocks, so a single block resolves
//! every reference a profile makes). Because both paths feed the same
//! profile-building code, lazy profiles are byte-identical to eager
//! ones — a property the equivalence tests pin.

use std::sync::Arc;

use minaret_ontology::Ontology;
use minaret_store::StoreError;

use crate::ids::{InstitutionId, ScholarId, VenueId};
use crate::lazy::{LazyWorld, WorldBlock};
use crate::model::{Institution, Paper, ReviewRecord, Scholar, Venue};
use crate::world::World;

/// The world reads needed to build one scholar's source profile.
pub trait WorldScope {
    /// The topic ontology.
    fn ontology(&self) -> &Ontology;
    /// Scholar by id (must be resolvable in this scope).
    fn scholar(&self, id: ScholarId) -> &Scholar;
    /// Venue by id.
    fn venue(&self, id: VenueId) -> &Venue;
    /// Institution by id.
    fn institution(&self, id: InstitutionId) -> &Institution;
    /// Papers authored by `id`, in global paper order.
    fn papers_of(&self, id: ScholarId) -> Vec<&Paper>;
    /// Review records of `id`, in global review order.
    fn reviews_of(&self, id: ScholarId) -> Vec<&ReviewRecord>;
}

impl WorldScope for World {
    fn ontology(&self) -> &Ontology {
        &self.ontology
    }
    fn scholar(&self, id: ScholarId) -> &Scholar {
        World::scholar(self, id)
    }
    fn venue(&self, id: VenueId) -> &Venue {
        World::venue(self, id)
    }
    fn institution(&self, id: InstitutionId) -> &Institution {
        World::institution(self, id)
    }
    fn papers_of(&self, id: ScholarId) -> Vec<&Paper> {
        World::papers_of(self, id)
            .iter()
            .map(|&p| self.paper(p))
            .collect()
    }
    fn reviews_of(&self, id: ScholarId) -> Vec<&ReviewRecord> {
        World::reviews_of(self, id).collect()
    }
}

/// A [`WorldScope`] over one decoded block of a [`LazyWorld`].
#[derive(Clone, Copy)]
pub struct BlockScope<'a> {
    world: &'a LazyWorld,
    block: &'a WorldBlock,
}

impl WorldScope for BlockScope<'_> {
    fn ontology(&self) -> &Ontology {
        self.world.ontology()
    }
    fn scholar(&self, id: ScholarId) -> &Scholar {
        self.block.scholar(id)
    }
    fn venue(&self, id: VenueId) -> &Venue {
        self.world.venue(id)
    }
    fn institution(&self, id: InstitutionId) -> &Institution {
        self.world.institution(id)
    }
    fn papers_of(&self, id: ScholarId) -> Vec<&Paper> {
        self.block.papers_of(id)
    }
    fn reviews_of(&self, id: ScholarId) -> Vec<&ReviewRecord> {
        self.block.reviews_of(id)
    }
}

/// A shared world, eager or lazy, behind one façade — what
/// `SimulatedSource` holds so the profile path is identical either way.
#[derive(Clone)]
pub enum WorldHandle {
    /// Fully materialized world (derived tables in RAM).
    Eager(Arc<World>),
    /// Store-backed world; blocks decode on demand.
    Lazy(Arc<LazyWorld>),
}

impl WorldHandle {
    /// Number of scholars in the world.
    pub fn scholar_count(&self) -> usize {
        match self {
            WorldHandle::Eager(w) => w.scholars().len(),
            WorldHandle::Lazy(w) => w.scholar_count(),
        }
    }

    /// The simulation's current year.
    pub fn current_year(&self) -> u32 {
        match self {
            WorldHandle::Eager(w) => w.current_year,
            WorldHandle::Lazy(w) => w.current_year(),
        }
    }

    /// The topic ontology.
    pub fn ontology(&self) -> &Ontology {
        match self {
            WorldHandle::Eager(w) => &w.ontology,
            WorldHandle::Lazy(w) => w.ontology(),
        }
    }

    /// True for the store-backed variant.
    pub fn is_lazy(&self) -> bool {
        matches!(self, WorldHandle::Lazy(_))
    }

    /// Visits `(id, given name, family name, interests)` for every
    /// scholar, in id order — the compact summary index builders need,
    /// available without materializing any profile.
    pub fn for_each_summary(
        &self,
        mut f: impl FnMut(ScholarId, &str, &str, &[minaret_ontology::TopicId]),
    ) {
        match self {
            WorldHandle::Eager(w) => {
                for s in w.scholars() {
                    f(s.id, &s.given_name, &s.family_name, &s.interests);
                }
            }
            WorldHandle::Lazy(w) => {
                for i in 0..w.scholar_count() {
                    let (given, family, interests) = w.summary(i);
                    f(ScholarId(i as u32), given, family, interests);
                }
            }
        }
    }

    /// Runs `f` against a [`WorldScope`] that can resolve `id` and
    /// everything its profile references. Eager worlds resolve in RAM;
    /// lazy worlds decode (or hit the cache for) `id`'s community
    /// block, which is the only I/O a single profile build needs.
    pub fn try_scope<R>(
        &self,
        id: ScholarId,
        f: impl FnOnce(&dyn WorldScope) -> R,
    ) -> Result<R, StoreError> {
        match self {
            WorldHandle::Eager(w) => Ok(f(w.as_ref())),
            WorldHandle::Lazy(w) => {
                let block = w.block_for(id)?;
                let scope = BlockScope {
                    world: w.as_ref(),
                    block: block.as_ref(),
                };
                Ok(f(&scope))
            }
        }
    }
}

impl std::fmt::Debug for WorldHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldHandle::Eager(w) => f
                .debug_struct("WorldHandle::Eager")
                .field("scholars", &w.scholars().len())
                .finish(),
            WorldHandle::Lazy(w) => f
                .debug_struct("WorldHandle::Lazy")
                .field("scholars", &w.scholar_count())
                .finish(),
        }
    }
}
