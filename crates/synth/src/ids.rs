//! Identifier newtypes for world entities.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index into the world's entity table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a scholar (a real person in the synthetic world).
    ScholarId,
    "s"
);
id_type!(
    /// Identifier of a published paper.
    PaperId,
    "p"
);
id_type!(
    /// Identifier of a publication venue (journal or conference).
    VenueId,
    "v"
);
id_type!(
    /// Identifier of an institution (university / research lab).
    InstitutionId,
    "i"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefixes() {
        assert_eq!(ScholarId(3).to_string(), "s3");
        assert_eq!(PaperId(4).to_string(), "p4");
        assert_eq!(VenueId(5).to_string(), "v5");
        assert_eq!(InstitutionId(6).to_string(), "i6");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ScholarId(1) < ScholarId(2));
        assert_eq!(PaperId(9).index(), 9);
    }
}
