//! Entity records of the synthetic scholarly world.

use minaret_ontology::TopicId;

use crate::ids::{InstitutionId, PaperId, ScholarId, VenueId};

/// A university or research lab a scholar can be affiliated with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Institution {
    /// Identifier.
    pub id: InstitutionId,
    /// Display name, e.g. `"University of Tartu"`.
    pub name: String,
    /// Country the institution is located in (used for country-level
    /// conflict-of-interest checks, §2.2 of the paper).
    pub country: String,
}

/// Journal or conference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VenueKind {
    /// A journal — the open-reviewer-universe case MINARET targets.
    Journal,
    /// A conference — the closed PC-universe case (§3 integration mode).
    Conference,
}

/// A publication venue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Venue {
    /// Identifier.
    pub id: VenueId,
    /// Display name.
    pub name: String,
    /// Journal or conference.
    pub kind: VenueKind,
    /// Topical focus of the venue.
    pub topics: Vec<TopicId>,
}

/// One published paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Paper {
    /// Identifier.
    pub id: PaperId,
    /// Generated title.
    pub title: String,
    /// Publication year.
    pub year: u32,
    /// Venue it appeared in.
    pub venue: VenueId,
    /// Author list, in author order. Never empty.
    pub authors: Vec<ScholarId>,
    /// Topics the paper is about (ground truth; sources expose noisy
    /// keyword views of this).
    pub topics: Vec<TopicId>,
    /// Citation count accumulated by the paper.
    pub citations: u32,
}

/// A span of years a scholar spent at one institution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffiliationSpan {
    /// Where.
    pub institution: InstitutionId,
    /// First year of the affiliation (inclusive).
    pub from_year: u32,
    /// Last year of the affiliation (inclusive).
    pub to_year: u32,
}

impl AffiliationSpan {
    /// True when `year` falls inside the span.
    pub fn covers(&self, year: u32) -> bool {
        (self.from_year..=self.to_year).contains(&year)
    }

    /// True when the two spans share at least one year.
    pub fn overlaps(&self, other: &AffiliationSpan) -> bool {
        self.from_year <= other.to_year && other.from_year <= self.to_year
    }
}

/// A researcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scholar {
    /// Identifier — the *true* identity. Sources expose their own keys;
    /// mapping those back to this id is the disambiguation problem.
    pub id: ScholarId,
    /// Given name, e.g. `"Lei"`.
    pub given_name: String,
    /// Family name, e.g. `"Zhou"`.
    pub family_name: String,
    /// Affiliation history, ordered by `from_year`. Never empty.
    pub affiliations: Vec<AffiliationSpan>,
    /// Research interests (ground truth topics).
    pub interests: Vec<TopicId>,
    /// Year of first activity (proxy for career start).
    pub active_since: u32,
}

impl Scholar {
    /// `"Given Family"` display form.
    pub fn full_name(&self) -> String {
        format!("{} {}", self.given_name, self.family_name)
    }

    /// Affiliation current in `year`, if any (the latest covering span).
    pub fn affiliation_in(&self, year: u32) -> Option<InstitutionId> {
        self.affiliations
            .iter()
            .rev()
            .find(|a| a.covers(year))
            .map(|a| a.institution)
    }

    /// The scholar's latest affiliation.
    pub fn current_affiliation(&self) -> InstitutionId {
        self.affiliations
            .last()
            .expect("scholars always have at least one affiliation")
            .institution
    }
}

/// One completed manuscript review (the Publons-style record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReviewRecord {
    /// Who reviewed.
    pub reviewer: ScholarId,
    /// For which venue.
    pub venue: VenueId,
    /// In which year.
    pub year: u32,
    /// Days the reviewer took to return the review — used by the
    /// "likelihood to accept and timely return" ranking aspect the paper
    /// lists in §1.
    pub turnaround_days: u32,
    /// Editor-assigned helpfulness of the review, 1–5 stars (Publons
    /// exposes review quality signals; §1 lists "the quality of the
    /// reviews" among the aspects an editor can consider).
    pub quality: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scholar() -> Scholar {
        Scholar {
            id: ScholarId(0),
            given_name: "Ada".into(),
            family_name: "Lovelace".into(),
            affiliations: vec![
                AffiliationSpan {
                    institution: InstitutionId(0),
                    from_year: 2000,
                    to_year: 2009,
                },
                AffiliationSpan {
                    institution: InstitutionId(1),
                    from_year: 2010,
                    to_year: 2018,
                },
            ],
            interests: vec![],
            active_since: 2000,
        }
    }

    #[test]
    fn full_name_joins_parts() {
        assert_eq!(scholar().full_name(), "Ada Lovelace");
    }

    #[test]
    fn affiliation_lookup_by_year() {
        let s = scholar();
        assert_eq!(s.affiliation_in(2005), Some(InstitutionId(0)));
        assert_eq!(s.affiliation_in(2012), Some(InstitutionId(1)));
        assert_eq!(s.affiliation_in(1999), None);
        assert_eq!(s.current_affiliation(), InstitutionId(1));
    }

    #[test]
    fn span_overlap_is_symmetric_and_correct() {
        let a = AffiliationSpan {
            institution: InstitutionId(0),
            from_year: 2000,
            to_year: 2005,
        };
        let b = AffiliationSpan {
            institution: InstitutionId(1),
            from_year: 2005,
            to_year: 2010,
        };
        let c = AffiliationSpan {
            institution: InstitutionId(2),
            from_year: 2006,
            to_year: 2010,
        };
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c) && !c.overlaps(&a));
    }
}
