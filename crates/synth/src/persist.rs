//! World snapshot and load through `minaret-store`.
//!
//! A [`World`] is fully determined by its raw entity tables, the
//! ontology, and the current year — [`World::assemble`] recomputes
//! every derived view from those. So a snapshot persists exactly that:
//! seven versioned sections under `world/…` keys, each wrapped in the
//! store codec's `[magic][tag][version]` envelope. Loading decodes the
//! sections and reassembles; the result is byte-identical to the world
//! that was snapshotted (string fields verbatim, adjacency ordering
//! preserved via [`Ontology::to_tables`]).
//!
//! Keys:
//!
//! | key                  | payload                      |
//! |----------------------|------------------------------|
//! | `world/meta`         | scholar count, seed, year    |
//! | `world/ontology`     | verbatim ontology tables     |
//! | `world/scholars`     | scholar table                |
//! | `world/papers`       | paper table                  |
//! | `world/venues`       | venue table                  |
//! | `world/institutions` | institution table            |
//! | `world/reviews`      | review table                 |

use minaret_ontology::{Ontology, OntologyTables, TopicId, TopicRow};
use minaret_store::{Reader, Store, StoreError, Writer};

use crate::ids::{InstitutionId, PaperId, ScholarId, VenueId};
use crate::model::{AffiliationSpan, Institution, Paper, ReviewRecord, Scholar, Venue, VenueKind};
use crate::world::World;

/// Envelope tags for the world sections.
mod tag {
    pub const META: u8 = 0x4D; // 'M'
    pub const ONTOLOGY: u8 = 0x4F; // 'O'
    pub const SCHOLARS: u8 = 0x53; // 'S'
    pub const PAPERS: u8 = 0x50; // 'P'
    pub const VENUES: u8 = 0x56; // 'V'
    pub const INSTITUTIONS: u8 = 0x49; // 'I'
    pub const REVIEWS: u8 = 0x52; // 'R'
}

/// Current world-snapshot format version (shared by all sections).
pub const WORLD_FORMAT_VERSION: u8 = 1;

const KEY_META: &[u8] = b"world/meta";
const KEY_ONTOLOGY: &[u8] = b"world/ontology";
const KEY_SCHOLARS: &[u8] = b"world/scholars";
const KEY_PAPERS: &[u8] = b"world/papers";
const KEY_VENUES: &[u8] = b"world/venues";
const KEY_INSTITUTIONS: &[u8] = b"world/institutions";
const KEY_REVIEWS: &[u8] = b"world/reviews";

/// Provenance recorded alongside a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Number of scholars in the snapshotted world.
    pub scholars: u32,
    /// The generation seed the world was built from.
    pub seed: u64,
    /// The world's current (simulation) year.
    pub current_year: u32,
}

/// Writes `world` into `store` under the `world/…` keys, overwriting
/// any previous snapshot, then flushes so the snapshot is durable.
pub fn snapshot_world(store: &Store, world: &World, meta: SnapshotMeta) -> Result<(), StoreError> {
    store.put(KEY_META, &encode_meta(meta))?;
    store.put(KEY_ONTOLOGY, &encode_ontology(&world.ontology.to_tables()))?;
    store.put(KEY_SCHOLARS, &encode_scholars(world.scholars()))?;
    store.put(KEY_PAPERS, &encode_papers(world.papers()))?;
    store.put(KEY_VENUES, &encode_venues(world.venues()))?;
    store.put(KEY_INSTITUTIONS, &encode_institutions(world.institutions()))?;
    store.put(KEY_REVIEWS, &encode_reviews(world.reviews()))?;
    store.flush()?;
    store.sync()
}

/// Reads the snapshot in `store`, if one exists, and reassembles the
/// world. `Ok(None)` means the store holds no snapshot (fresh data
/// directory); decode failures and version mismatches are errors.
pub fn load_world(store: &Store) -> Result<Option<(World, SnapshotMeta)>, StoreError> {
    let Some(meta_bytes) = store.get(KEY_META)? else {
        return Ok(None);
    };
    let meta = decode_meta(&meta_bytes)?;
    let section = |key: &[u8], what: &'static str| -> Result<Vec<u8>, StoreError> {
        store.get(key)?.ok_or(StoreError::Codec {
            what,
            detail: "world snapshot is missing this section".into(),
        })
    };
    let ontology_tables = decode_ontology(&section(KEY_ONTOLOGY, "world ontology section")?)?;
    let ontology = Ontology::from_tables(ontology_tables).map_err(|e| StoreError::Codec {
        what: "world ontology section",
        detail: e.to_string(),
    })?;
    let scholars = decode_scholars(&section(KEY_SCHOLARS, "world scholars section")?)?;
    let papers = decode_papers(&section(KEY_PAPERS, "world papers section")?)?;
    let venues = decode_venues(&section(KEY_VENUES, "world venues section")?)?;
    let institutions =
        decode_institutions(&section(KEY_INSTITUTIONS, "world institutions section")?)?;
    let reviews = decode_reviews(&section(KEY_REVIEWS, "world reviews section")?)?;
    let world = World::assemble(
        ontology,
        meta.current_year,
        scholars,
        papers,
        venues,
        institutions,
        reviews,
    );
    Ok(Some((world, meta)))
}

fn encode_meta(meta: SnapshotMeta) -> Vec<u8> {
    let mut w = Writer::versioned(tag::META, WORLD_FORMAT_VERSION);
    w.u32(meta.scholars);
    w.u64(meta.seed);
    w.u32(meta.current_year);
    w.finish()
}

fn decode_meta(bytes: &[u8]) -> Result<SnapshotMeta, StoreError> {
    let (mut r, _) =
        Reader::versioned("world meta section", bytes, tag::META, WORLD_FORMAT_VERSION)?;
    let meta = SnapshotMeta {
        scholars: r.u32()?,
        seed: r.u64()?,
        current_year: r.u32()?,
    };
    r.expect_end()?;
    Ok(meta)
}

fn write_topic_ids(w: &mut Writer, ids: &[TopicId]) {
    w.u32(ids.len() as u32);
    for t in ids {
        w.u32(t.index() as u32);
    }
}

fn read_topic_ids(r: &mut Reader<'_>) -> Result<Vec<TopicId>, StoreError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(TopicId::from_index(r.u32()? as usize));
    }
    Ok(out)
}

fn encode_ontology(tables: &OntologyTables) -> Vec<u8> {
    let mut w = Writer::versioned(tag::ONTOLOGY, WORLD_FORMAT_VERSION);
    w.u32(tables.topics.len() as u32);
    for t in &tables.topics {
        w.str(&t.label);
        w.str(&t.normalized);
        w.u32(t.aliases.len() as u32);
        for a in &t.aliases {
            w.str(a);
        }
    }
    for rows in [&tables.parents, &tables.children, &tables.related] {
        for row in rows.iter() {
            write_topic_ids(&mut w, row);
        }
    }
    w.finish()
}

fn decode_ontology(bytes: &[u8]) -> Result<OntologyTables, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world ontology section",
        bytes,
        tag::ONTOLOGY,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut topics = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.str()?.to_string();
        let normalized = r.str()?.to_string();
        let alias_count = r.u32()? as usize;
        let mut aliases = Vec::with_capacity(alias_count);
        for _ in 0..alias_count {
            aliases.push(r.str()?.to_string());
        }
        topics.push(TopicRow {
            label,
            normalized,
            aliases,
        });
    }
    let mut read_rows = || -> Result<Vec<Vec<TopicId>>, StoreError> {
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(read_topic_ids(&mut r)?);
        }
        Ok(rows)
    };
    let parents = read_rows()?;
    let children = read_rows()?;
    let related = read_rows()?;
    r.expect_end()?;
    Ok(OntologyTables {
        topics,
        parents,
        children,
        related,
    })
}

fn encode_scholars(scholars: &[Scholar]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::SCHOLARS, WORLD_FORMAT_VERSION);
    w.u32(scholars.len() as u32);
    for s in scholars {
        w.u32(s.id.0);
        w.str(&s.given_name);
        w.str(&s.family_name);
        w.u32(s.affiliations.len() as u32);
        for a in &s.affiliations {
            w.u32(a.institution.0);
            w.u32(a.from_year);
            w.u32(a.to_year);
        }
        write_topic_ids(&mut w, &s.interests);
        w.u32(s.active_since);
    }
    w.finish()
}

fn decode_scholars(bytes: &[u8]) -> Result<Vec<Scholar>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world scholars section",
        bytes,
        tag::SCHOLARS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ScholarId(r.u32()?);
        let given_name = r.str()?.to_string();
        let family_name = r.str()?.to_string();
        let span_count = r.u32()? as usize;
        let mut affiliations = Vec::with_capacity(span_count);
        for _ in 0..span_count {
            affiliations.push(AffiliationSpan {
                institution: InstitutionId(r.u32()?),
                from_year: r.u32()?,
                to_year: r.u32()?,
            });
        }
        let interests = read_topic_ids(&mut r)?;
        let active_since = r.u32()?;
        out.push(Scholar {
            id,
            given_name,
            family_name,
            affiliations,
            interests,
            active_since,
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_papers(papers: &[Paper]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::PAPERS, WORLD_FORMAT_VERSION);
    w.u32(papers.len() as u32);
    for p in papers {
        w.u32(p.id.0);
        w.str(&p.title);
        w.u32(p.year);
        w.u32(p.venue.0);
        w.u32(p.authors.len() as u32);
        for a in &p.authors {
            w.u32(a.0);
        }
        write_topic_ids(&mut w, &p.topics);
        w.u32(p.citations);
    }
    w.finish()
}

fn decode_papers(bytes: &[u8]) -> Result<Vec<Paper>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world papers section",
        bytes,
        tag::PAPERS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = PaperId(r.u32()?);
        let title = r.str()?.to_string();
        let year = r.u32()?;
        let venue = VenueId(r.u32()?);
        let author_count = r.u32()? as usize;
        let mut authors = Vec::with_capacity(author_count);
        for _ in 0..author_count {
            authors.push(ScholarId(r.u32()?));
        }
        let topics = read_topic_ids(&mut r)?;
        let citations = r.u32()?;
        out.push(Paper {
            id,
            title,
            year,
            venue,
            authors,
            topics,
            citations,
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_venues(venues: &[Venue]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::VENUES, WORLD_FORMAT_VERSION);
    w.u32(venues.len() as u32);
    for v in venues {
        w.u32(v.id.0);
        w.str(&v.name);
        w.u8(match v.kind {
            VenueKind::Journal => 0,
            VenueKind::Conference => 1,
        });
        write_topic_ids(&mut w, &v.topics);
    }
    w.finish()
}

fn decode_venues(bytes: &[u8]) -> Result<Vec<Venue>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world venues section",
        bytes,
        tag::VENUES,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = VenueId(r.u32()?);
        let name = r.str()?.to_string();
        let kind = match r.u8()? {
            0 => VenueKind::Journal,
            1 => VenueKind::Conference,
            other => {
                return Err(StoreError::Codec {
                    what: "world venues section",
                    detail: format!("unknown venue kind byte {other}"),
                })
            }
        };
        let topics = read_topic_ids(&mut r)?;
        out.push(Venue {
            id,
            name,
            kind,
            topics,
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_institutions(institutions: &[Institution]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::INSTITUTIONS, WORLD_FORMAT_VERSION);
    w.u32(institutions.len() as u32);
    for i in institutions {
        w.u32(i.id.0);
        w.str(&i.name);
        w.str(&i.country);
    }
    w.finish()
}

fn decode_institutions(bytes: &[u8]) -> Result<Vec<Institution>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world institutions section",
        bytes,
        tag::INSTITUTIONS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Institution {
            id: InstitutionId(r.u32()?),
            name: r.str()?.to_string(),
            country: r.str()?.to_string(),
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_reviews(reviews: &[ReviewRecord]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::REVIEWS, WORLD_FORMAT_VERSION);
    w.u32(reviews.len() as u32);
    for rv in reviews {
        w.u32(rv.reviewer.0);
        w.u32(rv.venue.0);
        w.u32(rv.year);
        w.u32(rv.turnaround_days);
        w.u8(rv.quality);
    }
    w.finish()
}

fn decode_reviews(bytes: &[u8]) -> Result<Vec<ReviewRecord>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world reviews section",
        bytes,
        tag::REVIEWS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ReviewRecord {
            reviewer: ScholarId(r.u32()?),
            venue: VenueId(r.u32()?),
            year: r.u32()?,
            turnaround_days: r.u32()?,
            quality: r.u8()?,
        });
    }
    r.expect_end()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::generator::WorldGenerator;
    use minaret_store::StoreConfig;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minaret-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_world() -> (World, WorldConfig) {
        let cfg = WorldConfig::sized(60);
        let world = WorldGenerator::new(cfg.clone()).generate();
        (world, cfg)
    }

    #[test]
    fn snapshot_then_load_reproduces_the_world_exactly() {
        let dir = tmp_dir("roundtrip");
        let (world, cfg) = small_world();
        let meta = SnapshotMeta {
            scholars: cfg.scholars as u32,
            seed: cfg.seed,
            current_year: world.current_year,
        };
        {
            let store = Store::open(&dir, StoreConfig::default()).unwrap();
            snapshot_world(&store, &world, meta).unwrap();
        }
        // A fresh process: open the store and load.
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        let (loaded, loaded_meta) = load_world(&store).unwrap().expect("snapshot present");
        assert_eq!(loaded_meta, meta);
        assert_eq!(loaded.current_year, world.current_year);
        assert_eq!(loaded.scholars(), world.scholars());
        assert_eq!(loaded.papers(), world.papers());
        assert_eq!(loaded.venues(), world.venues());
        assert_eq!(loaded.institutions(), world.institutions());
        assert_eq!(loaded.reviews(), world.reviews());
        assert_eq!(
            loaded.ontology.to_tables(),
            world.ontology.to_tables(),
            "ontology tables must round-trip verbatim"
        );
        // Spot-check a derived view to confirm reassembly ran.
        for s in world.scholars().iter().take(5) {
            assert_eq!(loaded.papers_of(s.id), world.papers_of(s.id));
            assert_eq!(loaded.h_index_of(s.id), world.h_index_of(s.id));
        }
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_store_loads_nothing() {
        let dir = tmp_dir("empty");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(load_world(&store).unwrap().is_none());
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn future_version_is_rejected_descriptively() {
        let dir = tmp_dir("future");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        let mut w = Writer::versioned(tag::META, WORLD_FORMAT_VERSION + 1);
        w.u32(1);
        w.u64(2);
        w.u32(3);
        store.put(KEY_META, &w.finish()).unwrap();
        let err = load_world(&store).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("format version"), "{msg}");
        assert!(msg.contains("migrate or regenerate"), "{msg}");
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
