//! World snapshot and load through `minaret-store`.
//!
//! A [`World`] is fully determined by its raw entity tables, the
//! ontology, and the current year — [`World::assemble`] recomputes
//! every derived view from those. So a snapshot persists exactly that:
//! seven versioned sections under `world/…` keys, each wrapped in the
//! store codec's `[magic][tag][version]` envelope. Loading decodes the
//! sections and reassembles; the result is byte-identical to the world
//! that was snapshotted (string fields verbatim, adjacency ordering
//! preserved via [`Ontology::to_tables`]).
//!
//! Keys:
//!
//! | key                  | payload                      |
//! |----------------------|------------------------------|
//! | `world/meta`         | scholar count, seed, year    |
//! | `world/ontology`     | verbatim ontology tables     |
//! | `world/scholars`     | scholar table                |
//! | `world/papers`       | paper table                  |
//! | `world/venues`       | venue table                  |
//! | `world/institutions` | institution table            |
//! | `world/reviews`      | review table                 |

use std::collections::HashMap;

use minaret_ontology::{Ontology, OntologyTables, TopicId, TopicRow};
use minaret_store::{Reader, Store, StoreError, Writer};

use crate::ids::{InstitutionId, PaperId, ScholarId, VenueId};
use crate::model::{AffiliationSpan, Institution, Paper, ReviewRecord, Scholar, Venue, VenueKind};
use crate::stream::{StreamingGenerator, COMMUNITY_BLOCK};
use crate::world::{World, WorldStats};

/// Envelope tags for the world sections.
mod tag {
    pub const META: u8 = 0x4D; // 'M'
    pub const ONTOLOGY: u8 = 0x4F; // 'O'
    pub const SCHOLARS: u8 = 0x53; // 'S'
    pub const PAPERS: u8 = 0x50; // 'P'
    pub const VENUES: u8 = 0x56; // 'V'
    pub const INSTITUTIONS: u8 = 0x49; // 'I'
    pub const REVIEWS: u8 = 0x52; // 'R'
    pub const STREAM_META: u8 = 0x57; // 'W'
    pub const SUMMARIES: u8 = 0x55; // 'U'
}

/// Current world-snapshot format version (shared by all sections).
pub const WORLD_FORMAT_VERSION: u8 = 1;

const KEY_META: &[u8] = b"world/meta";
const KEY_ONTOLOGY: &[u8] = b"world/ontology";
const KEY_SCHOLARS: &[u8] = b"world/scholars";
const KEY_PAPERS: &[u8] = b"world/papers";
const KEY_VENUES: &[u8] = b"world/venues";
const KEY_INSTITUTIONS: &[u8] = b"world/institutions";
const KEY_REVIEWS: &[u8] = b"world/reviews";
const KEY_STREAM_META: &[u8] = b"world/meta2";

pub(crate) fn chunk_key(chunk: usize, section: &str) -> Vec<u8> {
    format!("world/chunk/{chunk:08}/{section}").into_bytes()
}

pub(crate) fn summaries_key(chunk: usize) -> Vec<u8> {
    format!("world/summaries/{chunk:08}").into_bytes()
}

/// Provenance recorded alongside a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Number of scholars in the snapshotted world.
    pub scholars: u32,
    /// The generation seed the world was built from.
    pub seed: u64,
    /// The world's current (simulation) year.
    pub current_year: u32,
}

/// Writes `world` into `store` under the `world/…` keys, overwriting
/// any previous snapshot, then flushes so the snapshot is durable.
pub fn snapshot_world(store: &Store, world: &World, meta: SnapshotMeta) -> Result<(), StoreError> {
    store.put(KEY_META, &encode_meta(meta))?;
    store.put(KEY_ONTOLOGY, &encode_ontology(&world.ontology.to_tables()))?;
    store.put(KEY_SCHOLARS, &encode_scholars(world.scholars()))?;
    store.put(KEY_PAPERS, &encode_papers(world.papers()))?;
    store.put(KEY_VENUES, &encode_venues(world.venues()))?;
    store.put(KEY_INSTITUTIONS, &encode_institutions(world.institutions()))?;
    store.put(KEY_REVIEWS, &encode_reviews(world.reviews()))?;
    store.flush()?;
    store.sync()
}

/// Reads the snapshot in `store`, if one exists, and reassembles the
/// world. `Ok(None)` means the store holds no snapshot (fresh data
/// directory); decode failures and version mismatches are errors.
pub fn load_world(store: &Store) -> Result<Option<(World, SnapshotMeta)>, StoreError> {
    let Some(meta_bytes) = store.get(KEY_META)? else {
        return Ok(None);
    };
    let meta = decode_meta(&meta_bytes)?;
    let section = |key: &[u8], what: &'static str| -> Result<Vec<u8>, StoreError> {
        store.get(key)?.ok_or(StoreError::Codec {
            what,
            detail: "world snapshot is missing this section".into(),
        })
    };
    let ontology_tables = decode_ontology(&section(KEY_ONTOLOGY, "world ontology section")?)?;
    let ontology = Ontology::from_tables(ontology_tables).map_err(|e| StoreError::Codec {
        what: "world ontology section",
        detail: e.to_string(),
    })?;
    let scholars = decode_scholars(&section(KEY_SCHOLARS, "world scholars section")?)?;
    let papers = decode_papers(&section(KEY_PAPERS, "world papers section")?)?;
    let venues = decode_venues(&section(KEY_VENUES, "world venues section")?)?;
    let institutions =
        decode_institutions(&section(KEY_INSTITUTIONS, "world institutions section")?)?;
    let reviews = decode_reviews(&section(KEY_REVIEWS, "world reviews section")?)?;
    let world = World::assemble(
        ontology,
        meta.current_year,
        scholars,
        papers,
        venues,
        institutions,
        reviews,
    );
    Ok(Some((world, meta)))
}

/// Provenance and layout of a chunked (v2) snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StreamMeta {
    pub scholars: u32,
    pub seed: u64,
    pub current_year: u32,
    /// Scholars per chunk at write time (always [`COMMUNITY_BLOCK`]).
    pub block: u32,
    /// Number of chunks written.
    pub chunks: u32,
    pub papers: u64,
    pub reviews: u64,
}

/// Per-chunk progress reported by [`stream_snapshot_world`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// Chunk ordinal just written (0-based).
    pub chunk: usize,
    /// Total chunks the snapshot will contain.
    pub chunks_total: usize,
    /// Scholars written so far.
    pub scholars_done: usize,
    /// Papers in this chunk.
    pub papers: usize,
    /// Reviews in this chunk.
    pub reviews: usize,
    /// Encoded bytes of this chunk (scholars + papers + reviews +
    /// summaries sections).
    pub bytes: usize,
}

/// Aggregate result of a streamed snapshot — enough to report
/// [`WorldStats`] without ever holding the world in memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamTotals {
    /// Scholars written.
    pub scholars: usize,
    /// Papers written.
    pub papers: usize,
    /// Venues written.
    pub venues: usize,
    /// Institutions written.
    pub institutions: usize,
    /// Review records written.
    pub reviews: usize,
    /// Scholars whose full name is shared with at least one other.
    pub colliding_scholars: usize,
    /// Total authorship edges (for mean papers per scholar).
    pub authorships: usize,
    /// Chunks written.
    pub chunks: usize,
    /// Total encoded chunk bytes written.
    pub bytes: u64,
    /// Largest single chunk's encoded bytes — the streaming path's
    /// peak-resident proxy.
    pub peak_chunk_bytes: usize,
}

impl StreamTotals {
    /// The same summary [`World::stats`] computes on a materialized
    /// world.
    pub fn stats(&self) -> WorldStats {
        WorldStats {
            scholars: self.scholars,
            papers: self.papers,
            venues: self.venues,
            institutions: self.institutions,
            reviews: self.reviews,
            colliding_scholars: self.colliding_scholars,
            mean_papers_per_scholar: if self.scholars == 0 {
                0.0
            } else {
                self.authorships as f64 / self.scholars as f64
            },
        }
    }
}

/// Streams `gen`'s world into `store` as a chunked (v2) snapshot,
/// writing each chunk as it is produced so peak memory is one community
/// block plus the store's memtable. Layout:
///
/// | key                          | payload                         |
/// |------------------------------|---------------------------------|
/// | `world/meta2`                | counts, seed, block/chunk shape |
/// | `world/ontology` … `world/institutions` | shared sections (v1 codecs) |
/// | `world/chunk/{k}/scholars`   | scholar table of chunk `k`      |
/// | `world/chunk/{k}/papers`     | papers led by chunk `k`         |
/// | `world/chunk/{k}/reviews`    | reviews by chunk `k`            |
/// | `world/summaries/{k}`        | names + interests of chunk `k`  |
///
/// `world/meta2` is written *last* and is the load gate, so an
/// interrupted snapshot is invisible to loaders. Any stale v1
/// `world/meta` is deleted so the two formats cannot disagree.
/// `on_chunk` fires after each chunk is handed to the store.
pub fn stream_snapshot_world(
    store: &Store,
    gen: &StreamingGenerator,
    mut on_chunk: impl FnMut(&StreamProgress),
) -> Result<StreamTotals, StoreError> {
    let cfg = gen.config();
    let chunks_total = cfg.scholars.div_ceil(COMMUNITY_BLOCK);
    let mut totals = StreamTotals {
        scholars: 0,
        papers: 0,
        venues: gen.venues().len(),
        institutions: gen.institutions().len(),
        reviews: 0,
        colliding_scholars: 0,
        authorships: 0,
        chunks: 0,
        bytes: 0,
        peak_chunk_bytes: 0,
    };
    // Full-name collision counting via 64-bit name hashes keeps the
    // accumulator a few MB even at 10^6 scholars.
    let mut name_counts: HashMap<u64, u32> = HashMap::new();
    for chunk in gen.chunks(COMMUNITY_BLOCK) {
        let scholars = encode_scholars(&chunk.scholars);
        let papers = encode_papers(&chunk.papers);
        let reviews = encode_reviews(&chunk.reviews);
        let summaries = encode_summaries(&chunk.scholars);
        let bytes = scholars.len() + papers.len() + reviews.len() + summaries.len();
        store.put(&chunk_key(chunk.index, "scholars"), &scholars)?;
        store.put(&chunk_key(chunk.index, "papers"), &papers)?;
        store.put(&chunk_key(chunk.index, "reviews"), &reviews)?;
        store.put(&summaries_key(chunk.index), &summaries)?;
        for s in &chunk.scholars {
            *name_counts.entry(name_hash(s)).or_insert(0) += 1;
        }
        totals.scholars += chunk.scholars.len();
        totals.papers += chunk.papers.len();
        totals.reviews += chunk.reviews.len();
        totals.authorships += chunk.papers.iter().map(|p| p.authors.len()).sum::<usize>();
        totals.chunks += 1;
        totals.bytes += bytes as u64;
        totals.peak_chunk_bytes = totals.peak_chunk_bytes.max(bytes);
        on_chunk(&StreamProgress {
            chunk: chunk.index,
            chunks_total,
            scholars_done: totals.scholars,
            papers: chunk.papers.len(),
            reviews: chunk.reviews.len(),
            bytes,
        });
    }
    totals.colliding_scholars = name_counts
        .values()
        .filter(|&&c| c > 1)
        .map(|&c| c as usize)
        .sum();
    store.put(KEY_ONTOLOGY, &encode_ontology(&gen.ontology().to_tables()))?;
    store.put(KEY_VENUES, &encode_venues(gen.venues()))?;
    store.put(KEY_INSTITUTIONS, &encode_institutions(gen.institutions()))?;
    store.put(
        KEY_STREAM_META,
        &encode_stream_meta(StreamMeta {
            scholars: totals.scholars as u32,
            seed: cfg.seed,
            current_year: cfg.end_year,
            block: COMMUNITY_BLOCK as u32,
            chunks: totals.chunks as u32,
            papers: totals.papers as u64,
            reviews: totals.reviews as u64,
        }),
    )?;
    // A v1 snapshot shares the ontology/venues/institutions keys we just
    // overwrote; drop its meta so it cannot be half-loaded later.
    store.delete(KEY_META)?;
    store.flush()?;
    store.sync()?;
    Ok(totals)
}

fn name_hash(s: &Scholar) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s
        .given_name
        .as_bytes()
        .iter()
        .chain(&[0x1f])
        .chain(s.family_name.as_bytes())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Loads a chunked (v2) snapshot into a fully materialized [`World`],
/// if the store holds one. The eager counterpart of
/// [`crate::LazyWorld::open`], used by the server which keeps the whole
/// world resident.
pub fn load_world_streamed(store: &Store) -> Result<Option<(World, SnapshotMeta)>, StoreError> {
    let Some(meta_bytes) = store.get(KEY_STREAM_META)? else {
        return Ok(None);
    };
    let meta = decode_stream_meta(&meta_bytes)?;
    let section = |key: &[u8], what: &'static str| -> Result<Vec<u8>, StoreError> {
        store.get(key)?.ok_or(StoreError::Codec {
            what,
            detail: "world snapshot is missing this section".into(),
        })
    };
    let ontology_tables = decode_ontology(&section(KEY_ONTOLOGY, "world ontology section")?)?;
    let ontology = Ontology::from_tables(ontology_tables).map_err(|e| StoreError::Codec {
        what: "world ontology section",
        detail: e.to_string(),
    })?;
    let venues = decode_venues(&section(KEY_VENUES, "world venues section")?)?;
    let institutions =
        decode_institutions(&section(KEY_INSTITUTIONS, "world institutions section")?)?;
    let mut scholars = Vec::with_capacity(meta.scholars as usize);
    let mut papers = Vec::with_capacity(meta.papers as usize);
    let mut reviews = Vec::with_capacity(meta.reviews as usize);
    for k in 0..meta.chunks as usize {
        scholars.extend(decode_scholars(&section(
            &chunk_key(k, "scholars"),
            "world chunk scholars section",
        )?)?);
        papers.extend(decode_papers(&section(
            &chunk_key(k, "papers"),
            "world chunk papers section",
        )?)?);
        reviews.extend(decode_reviews(&section(
            &chunk_key(k, "reviews"),
            "world chunk reviews section",
        )?)?);
    }
    let world = World::assemble(
        ontology,
        meta.current_year,
        scholars,
        papers,
        venues,
        institutions,
        reviews,
    );
    let meta = SnapshotMeta {
        scholars: meta.scholars,
        seed: meta.seed,
        current_year: meta.current_year,
    };
    Ok(Some((world, meta)))
}

/// A 64-bit FNV-1a fingerprint of the world's encoded sections — two
/// worlds fingerprint equal iff every entity table (and the ontology)
/// is byte-identical. The golden the chunk-invariance tests pin.
pub fn world_fingerprint(world: &World) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for bytes in [
        encode_ontology(&world.ontology.to_tables()),
        encode_scholars(world.scholars()),
        encode_papers(world.papers()),
        encode_venues(world.venues()),
        encode_institutions(world.institutions()),
        encode_reviews(world.reviews()),
    ] {
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn encode_stream_meta(meta: StreamMeta) -> Vec<u8> {
    let mut w = Writer::versioned(tag::STREAM_META, WORLD_FORMAT_VERSION);
    w.u32(meta.scholars);
    w.u64(meta.seed);
    w.u32(meta.current_year);
    w.u32(meta.block);
    w.u32(meta.chunks);
    w.u64(meta.papers);
    w.u64(meta.reviews);
    w.finish()
}

pub(crate) fn decode_stream_meta(bytes: &[u8]) -> Result<StreamMeta, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world stream meta section",
        bytes,
        tag::STREAM_META,
        WORLD_FORMAT_VERSION,
    )?;
    let meta = StreamMeta {
        scholars: r.u32()?,
        seed: r.u64()?,
        current_year: r.u32()?,
        block: r.u32()?,
        chunks: r.u32()?,
        papers: r.u64()?,
        reviews: r.u64()?,
    };
    r.expect_end()?;
    Ok(meta)
}

pub(crate) fn get_stream_meta(store: &Store) -> Result<Option<StreamMeta>, StoreError> {
    match store.get(KEY_STREAM_META)? {
        Some(bytes) => Ok(Some(decode_stream_meta(&bytes)?)),
        None => Ok(None),
    }
}

/// Encodes the compact per-scholar summaries (names + interests) the
/// lazy startup path indexes from.
fn encode_summaries(scholars: &[Scholar]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::SUMMARIES, WORLD_FORMAT_VERSION);
    w.u32(scholars.len() as u32);
    for s in scholars {
        w.str(&s.given_name);
        w.str(&s.family_name);
        write_topic_ids(&mut w, &s.interests);
    }
    w.finish()
}

pub(crate) struct SummaryChunk {
    pub names: Vec<(String, String)>,
    pub interests: Vec<Vec<TopicId>>,
}

pub(crate) fn decode_summaries(bytes: &[u8]) -> Result<SummaryChunk, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world summaries section",
        bytes,
        tag::SUMMARIES,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut names = Vec::with_capacity(n);
    let mut interests = Vec::with_capacity(n);
    for _ in 0..n {
        let given = r.str()?.to_string();
        let family = r.str()?.to_string();
        names.push((given, family));
        interests.push(read_topic_ids(&mut r)?);
    }
    r.expect_end()?;
    Ok(SummaryChunk { names, interests })
}

fn encode_meta(meta: SnapshotMeta) -> Vec<u8> {
    let mut w = Writer::versioned(tag::META, WORLD_FORMAT_VERSION);
    w.u32(meta.scholars);
    w.u64(meta.seed);
    w.u32(meta.current_year);
    w.finish()
}

fn decode_meta(bytes: &[u8]) -> Result<SnapshotMeta, StoreError> {
    let (mut r, _) =
        Reader::versioned("world meta section", bytes, tag::META, WORLD_FORMAT_VERSION)?;
    let meta = SnapshotMeta {
        scholars: r.u32()?,
        seed: r.u64()?,
        current_year: r.u32()?,
    };
    r.expect_end()?;
    Ok(meta)
}

fn write_topic_ids(w: &mut Writer, ids: &[TopicId]) {
    w.u32(ids.len() as u32);
    for t in ids {
        w.u32(t.index() as u32);
    }
}

fn read_topic_ids(r: &mut Reader<'_>) -> Result<Vec<TopicId>, StoreError> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(TopicId::from_index(r.u32()? as usize));
    }
    Ok(out)
}

fn encode_ontology(tables: &OntologyTables) -> Vec<u8> {
    let mut w = Writer::versioned(tag::ONTOLOGY, WORLD_FORMAT_VERSION);
    w.u32(tables.topics.len() as u32);
    for t in &tables.topics {
        w.str(&t.label);
        w.str(&t.normalized);
        w.u32(t.aliases.len() as u32);
        for a in &t.aliases {
            w.str(a);
        }
    }
    for rows in [&tables.parents, &tables.children, &tables.related] {
        for row in rows.iter() {
            write_topic_ids(&mut w, row);
        }
    }
    w.finish()
}

pub(crate) fn decode_ontology(bytes: &[u8]) -> Result<OntologyTables, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world ontology section",
        bytes,
        tag::ONTOLOGY,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut topics = Vec::with_capacity(n);
    for _ in 0..n {
        let label = r.str()?.to_string();
        let normalized = r.str()?.to_string();
        let alias_count = r.u32()? as usize;
        let mut aliases = Vec::with_capacity(alias_count);
        for _ in 0..alias_count {
            aliases.push(r.str()?.to_string());
        }
        topics.push(TopicRow {
            label,
            normalized,
            aliases,
        });
    }
    let mut read_rows = || -> Result<Vec<Vec<TopicId>>, StoreError> {
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(read_topic_ids(&mut r)?);
        }
        Ok(rows)
    };
    let parents = read_rows()?;
    let children = read_rows()?;
    let related = read_rows()?;
    r.expect_end()?;
    Ok(OntologyTables {
        topics,
        parents,
        children,
        related,
    })
}

fn encode_scholars(scholars: &[Scholar]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::SCHOLARS, WORLD_FORMAT_VERSION);
    w.u32(scholars.len() as u32);
    for s in scholars {
        w.u32(s.id.0);
        w.str(&s.given_name);
        w.str(&s.family_name);
        w.u32(s.affiliations.len() as u32);
        for a in &s.affiliations {
            w.u32(a.institution.0);
            w.u32(a.from_year);
            w.u32(a.to_year);
        }
        write_topic_ids(&mut w, &s.interests);
        w.u32(s.active_since);
    }
    w.finish()
}

pub(crate) fn decode_scholars(bytes: &[u8]) -> Result<Vec<Scholar>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world scholars section",
        bytes,
        tag::SCHOLARS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = ScholarId(r.u32()?);
        let given_name = r.str()?.to_string();
        let family_name = r.str()?.to_string();
        let span_count = r.u32()? as usize;
        let mut affiliations = Vec::with_capacity(span_count);
        for _ in 0..span_count {
            affiliations.push(AffiliationSpan {
                institution: InstitutionId(r.u32()?),
                from_year: r.u32()?,
                to_year: r.u32()?,
            });
        }
        let interests = read_topic_ids(&mut r)?;
        let active_since = r.u32()?;
        out.push(Scholar {
            id,
            given_name,
            family_name,
            affiliations,
            interests,
            active_since,
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_papers(papers: &[Paper]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::PAPERS, WORLD_FORMAT_VERSION);
    w.u32(papers.len() as u32);
    for p in papers {
        w.u32(p.id.0);
        w.str(&p.title);
        w.u32(p.year);
        w.u32(p.venue.0);
        w.u32(p.authors.len() as u32);
        for a in &p.authors {
            w.u32(a.0);
        }
        write_topic_ids(&mut w, &p.topics);
        w.u32(p.citations);
    }
    w.finish()
}

pub(crate) fn decode_papers(bytes: &[u8]) -> Result<Vec<Paper>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world papers section",
        bytes,
        tag::PAPERS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = PaperId(r.u32()?);
        let title = r.str()?.to_string();
        let year = r.u32()?;
        let venue = VenueId(r.u32()?);
        let author_count = r.u32()? as usize;
        let mut authors = Vec::with_capacity(author_count);
        for _ in 0..author_count {
            authors.push(ScholarId(r.u32()?));
        }
        let topics = read_topic_ids(&mut r)?;
        let citations = r.u32()?;
        out.push(Paper {
            id,
            title,
            year,
            venue,
            authors,
            topics,
            citations,
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_venues(venues: &[Venue]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::VENUES, WORLD_FORMAT_VERSION);
    w.u32(venues.len() as u32);
    for v in venues {
        w.u32(v.id.0);
        w.str(&v.name);
        w.u8(match v.kind {
            VenueKind::Journal => 0,
            VenueKind::Conference => 1,
        });
        write_topic_ids(&mut w, &v.topics);
    }
    w.finish()
}

pub(crate) fn decode_venues(bytes: &[u8]) -> Result<Vec<Venue>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world venues section",
        bytes,
        tag::VENUES,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = VenueId(r.u32()?);
        let name = r.str()?.to_string();
        let kind = match r.u8()? {
            0 => VenueKind::Journal,
            1 => VenueKind::Conference,
            other => {
                return Err(StoreError::Codec {
                    what: "world venues section",
                    detail: format!("unknown venue kind byte {other}"),
                })
            }
        };
        let topics = read_topic_ids(&mut r)?;
        out.push(Venue {
            id,
            name,
            kind,
            topics,
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_institutions(institutions: &[Institution]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::INSTITUTIONS, WORLD_FORMAT_VERSION);
    w.u32(institutions.len() as u32);
    for i in institutions {
        w.u32(i.id.0);
        w.str(&i.name);
        w.str(&i.country);
    }
    w.finish()
}

pub(crate) fn decode_institutions(bytes: &[u8]) -> Result<Vec<Institution>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world institutions section",
        bytes,
        tag::INSTITUTIONS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Institution {
            id: InstitutionId(r.u32()?),
            name: r.str()?.to_string(),
            country: r.str()?.to_string(),
        });
    }
    r.expect_end()?;
    Ok(out)
}

fn encode_reviews(reviews: &[ReviewRecord]) -> Vec<u8> {
    let mut w = Writer::versioned(tag::REVIEWS, WORLD_FORMAT_VERSION);
    w.u32(reviews.len() as u32);
    for rv in reviews {
        w.u32(rv.reviewer.0);
        w.u32(rv.venue.0);
        w.u32(rv.year);
        w.u32(rv.turnaround_days);
        w.u8(rv.quality);
    }
    w.finish()
}

pub(crate) fn decode_reviews(bytes: &[u8]) -> Result<Vec<ReviewRecord>, StoreError> {
    let (mut r, _) = Reader::versioned(
        "world reviews section",
        bytes,
        tag::REVIEWS,
        WORLD_FORMAT_VERSION,
    )?;
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(ReviewRecord {
            reviewer: ScholarId(r.u32()?),
            venue: VenueId(r.u32()?),
            year: r.u32()?,
            turnaround_days: r.u32()?,
            quality: r.u8()?,
        });
    }
    r.expect_end()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::generator::WorldGenerator;
    use minaret_store::StoreConfig;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("minaret-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_world() -> (World, WorldConfig) {
        let cfg = WorldConfig::sized(60);
        let world = WorldGenerator::new(cfg.clone()).generate();
        (world, cfg)
    }

    #[test]
    fn snapshot_then_load_reproduces_the_world_exactly() {
        let dir = tmp_dir("roundtrip");
        let (world, cfg) = small_world();
        let meta = SnapshotMeta {
            scholars: cfg.scholars as u32,
            seed: cfg.seed,
            current_year: world.current_year,
        };
        {
            let store = Store::open(&dir, StoreConfig::default()).unwrap();
            snapshot_world(&store, &world, meta).unwrap();
        }
        // A fresh process: open the store and load.
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        let (loaded, loaded_meta) = load_world(&store).unwrap().expect("snapshot present");
        assert_eq!(loaded_meta, meta);
        assert_eq!(loaded.current_year, world.current_year);
        assert_eq!(loaded.scholars(), world.scholars());
        assert_eq!(loaded.papers(), world.papers());
        assert_eq!(loaded.venues(), world.venues());
        assert_eq!(loaded.institutions(), world.institutions());
        assert_eq!(loaded.reviews(), world.reviews());
        assert_eq!(
            loaded.ontology.to_tables(),
            world.ontology.to_tables(),
            "ontology tables must round-trip verbatim"
        );
        // Spot-check a derived view to confirm reassembly ran.
        for s in world.scholars().iter().take(5) {
            assert_eq!(loaded.papers_of(s.id), world.papers_of(s.id));
            assert_eq!(loaded.h_index_of(s.id), world.h_index_of(s.id));
        }
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_store_loads_nothing() {
        let dir = tmp_dir("empty");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        assert!(load_world(&store).unwrap().is_none());
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn future_version_is_rejected_descriptively() {
        let dir = tmp_dir("future");
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        let mut w = Writer::versioned(tag::META, WORLD_FORMAT_VERSION + 1);
        w.u32(1);
        w.u64(2);
        w.u32(3);
        store.put(KEY_META, &w.finish()).unwrap();
        let err = load_world(&store).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("format version"), "{msg}");
        assert!(msg.contains("migrate or regenerate"), "{msg}");
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn streamed_snapshot_round_trips_and_supersedes_v1() {
        let dir = tmp_dir("streamed");
        let (world, cfg) = small_world();
        let store = Store::open(&dir, StoreConfig::default()).unwrap();
        // A stale v1 snapshot first: streaming must retire it.
        snapshot_world(
            &store,
            &world,
            SnapshotMeta {
                scholars: cfg.scholars as u32,
                seed: cfg.seed,
                current_year: world.current_year,
            },
        )
        .unwrap();
        let gen = StreamingGenerator::new(cfg.clone());
        let mut progress = Vec::new();
        let totals = stream_snapshot_world(&store, &gen, |p| progress.push(*p)).unwrap();
        assert_eq!(totals.chunks, progress.len());
        assert_eq!(progress.last().unwrap().scholars_done, cfg.scholars);
        assert!(totals.peak_chunk_bytes <= totals.bytes as usize);
        assert_eq!(
            totals.stats(),
            world.stats(),
            "streamed totals must reproduce eager WorldStats"
        );
        assert!(
            load_world(&store).unwrap().is_none(),
            "v1 meta must be retired by a streamed snapshot"
        );
        let (loaded, meta) = load_world_streamed(&store).unwrap().expect("v2 present");
        assert_eq!(meta.seed, cfg.seed);
        assert_eq!(world_fingerprint(&loaded), world_fingerprint(&world));
        assert_eq!(loaded.scholars(), world.scholars());
        assert_eq!(loaded.papers(), world.papers());
        assert_eq!(loaded.reviews(), world.reviews());
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn lazy_world_serves_blocks_identical_to_eager() {
        let dir = tmp_dir("lazy");
        let cfg = WorldConfig::sized(2600); // three community blocks
        let world = WorldGenerator::new(cfg.clone()).generate();
        let store = std::sync::Arc::new(Store::open(&dir, StoreConfig::default()).unwrap());
        stream_snapshot_world(&store, &StreamingGenerator::new(cfg.clone()), |_| {}).unwrap();
        let lazy = crate::LazyWorld::open(store.clone())
            .unwrap()
            .expect("chunked snapshot present");
        assert_eq!(lazy.scholar_count(), world.scholars().len());
        assert_eq!(lazy.current_year(), world.current_year);
        assert_eq!(lazy.venues(), world.venues());
        assert_eq!(lazy.institutions(), world.institutions());
        for (i, s) in world.scholars().iter().enumerate() {
            let (given, family, interests) = lazy.summary(i);
            assert_eq!(given, s.given_name);
            assert_eq!(family, s.family_name);
            assert_eq!(interests, s.interests);
        }
        // Point reads across all three blocks match the eager tables.
        for idx in [0usize, 1, 1023, 1024, 2047, 2048, 2599, 777, 1500] {
            let id = crate::ScholarId(idx as u32);
            let block = lazy.block_for(id).unwrap();
            assert!(block.contains(id));
            assert_eq!(block.scholar(id), world.scholar(id));
            let eager_papers: Vec<_> = world
                .papers_of(id)
                .iter()
                .map(|&p| world.paper(p))
                .collect();
            assert_eq!(block.papers_of(id), eager_papers);
            let eager_reviews: Vec<_> = world.reviews_of(id).collect();
            assert_eq!(block.reviews_of(id), eager_reviews);
        }
        drop(lazy);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn lazy_block_cache_reuses_decoded_blocks() {
        let dir = tmp_dir("lazy-cache");
        let cfg = WorldConfig::sized(80);
        let store = std::sync::Arc::new(Store::open(&dir, StoreConfig::default()).unwrap());
        stream_snapshot_world(&store, &StreamingGenerator::new(cfg), |_| {}).unwrap();
        let lazy = crate::LazyWorld::open(store.clone()).unwrap().unwrap();
        let a = lazy.block_for(crate::ScholarId(3)).unwrap();
        let b = lazy.block_for(crate::ScholarId(70)).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "same block must come from cache"
        );
        drop(lazy);
        drop(store);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
