//! Synthetic manuscript submissions with ground-truth reviewer relevance.
//!
//! The evaluation experiments need manuscripts whose *ideal* reviewers
//! are knowable. A submission is synthesized from a real scholar's recent
//! work, and ground-truth relevance of any candidate reviewer is computed
//! directly from the clean world (publication record similarity, recency),
//! while the recommenders under test only see the noisy, partial views the
//! simulated sources expose.

use minaret_ontology::TopicId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ids::{ScholarId, VenueId};
use crate::model::VenueKind;
use crate::world::World;

/// A manuscript submitted for review, as the editor would enter it into
/// MINARET's details form (Figure 3): keywords, author list, affiliations
/// (derivable from the world), and a target journal.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionSpec {
    /// Manuscript title.
    pub title: String,
    /// Author-supplied keywords (topic labels, typically 3–5 per §2.1).
    pub keywords: Vec<String>,
    /// The resolved ground-truth topics behind the keywords.
    pub topics: Vec<TopicId>,
    /// The manuscript's authors.
    pub authors: Vec<ScholarId>,
    /// The journal the manuscript was submitted to.
    pub target_venue: VenueId,
}

/// Generates submissions from a world.
#[derive(Debug)]
pub struct SubmissionGenerator<'w> {
    world: &'w World,
    rng: StdRng,
}

impl<'w> SubmissionGenerator<'w> {
    /// Creates a generator with its own seed (independent of the world's).
    pub fn new(world: &'w World, seed: u64) -> Self {
        Self {
            world,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one submission, or `None` if the world has no usable
    /// authors/journals (empty worlds only).
    pub fn generate(&mut self) -> Option<SubmissionSpec> {
        let scholars = self.world.scholars();
        if scholars.is_empty() {
            return None;
        }
        let journals: Vec<VenueId> = self
            .world
            .venues()
            .iter()
            .filter(|v| v.kind == VenueKind::Journal)
            .map(|v| v.id)
            .collect();
        if journals.is_empty() {
            return None;
        }
        // Lead author: a scholar with at least one paper, so the
        // submission has a plausible track record behind it.
        for _ in 0..64 {
            let lead = ScholarId(self.rng.gen_range(0..scholars.len()) as u32);
            let papers = self.world.papers_of(lead);
            if papers.is_empty() {
                continue;
            }
            let base = self.world.paper(papers[papers.len() - 1]);
            let mut topics = base.topics.clone();
            // Possibly add one more interest of the lead.
            let lead_sch = self.world.scholar(lead);
            if let Some(&extra) = lead_sch.interests.first() {
                if !topics.contains(&extra) && topics.len() < 5 {
                    topics.push(extra);
                }
            }
            let keywords = topics
                .iter()
                .map(|&t| self.world.ontology.label(t).to_string())
                .collect();
            let mut authors = base.authors.clone();
            authors.truncate(4);
            let target_venue = journals[self.rng.gen_range(0..journals.len())];
            return Some(SubmissionSpec {
                title: format!("A new manuscript by {}", lead_sch.full_name()),
                keywords,
                topics,
                authors,
                target_venue,
            });
        }
        None
    }

    /// Generates `n` submissions (fewer if the world is degenerate).
    pub fn generate_many(&mut self, n: usize) -> Vec<SubmissionSpec> {
        (0..n).filter_map(|_| self.generate()).collect()
    }
}

/// Ground-truth relevance of `reviewer` for `submission`, in `[0, 1]`.
///
/// Graded by the reviewer's *publication record* against the submission's
/// true topics, with a recency boost, and hard-zeroed for conflicts of
/// interest (authorship, co-authorship, overlapping affiliation with any
/// author) — mirroring the editor's ideal judgment the paper's three
/// criteria describe.
pub fn ground_truth_relevance(
    world: &World,
    submission: &SubmissionSpec,
    reviewer: ScholarId,
) -> f64 {
    // Hard COI zero.
    for &a in &submission.authors {
        if a == reviewer
            || world.ever_coauthored(a, reviewer)
            || world.shared_affiliation(a, reviewer)
        {
            return 0.0;
        }
    }
    let papers = world.papers_of(reviewer);
    if papers.is_empty() {
        return 0.0;
    }
    let now = world.current_year as f64;
    let mut per_topic_best = vec![0.0f64; submission.topics.len()];
    for &pid in papers {
        let p = world.paper(pid);
        let age = (now - p.year as f64).max(0.0);
        let recency = 0.5f64.powf(age / 6.0); // half-life of 6 years
        for (i, &t) in submission.topics.iter().enumerate() {
            let sim = p
                .topics
                .iter()
                .map(|&pt| world.ontology.similarity(t, pt))
                .fold(0.0, f64::max);
            per_topic_best[i] = per_topic_best[i].max(sim * (0.5 + 0.5 * recency));
        }
    }
    let coverage = per_topic_best.iter().sum::<f64>() / per_topic_best.len().max(1) as f64;
    coverage.clamp(0.0, 1.0)
}

/// Ground-truth relevance of *every* scholar for `submission`, indexed by
/// `ScholarId::index()`.
///
/// Produces exactly the values [`ground_truth_relevance`] would, but hoists
/// the topic-similarity computation out of the scholar loop: Wu-Palmer
/// similarity is evaluated once per (submission topic, ontology topic) pair
/// instead of once per (scholar, paper, topic) triple. At conference scale
/// (10^4 scholars, ~10 papers each) that turns millions of graph walks into
/// a few hundred, which is what makes batch-assignment quality scoring
/// affordable.
pub fn ground_truth_relevance_all(world: &World, submission: &SubmissionSpec) -> Vec<f64> {
    // sim_table[i][j] = similarity(submission.topics[i], topic with index j).
    let topic_count = world.ontology.len();
    let sim_table: Vec<Vec<f64>> = submission
        .topics
        .iter()
        .map(|&t| {
            (0..topic_count)
                .map(|j| world.ontology.similarity(t, TopicId::from_index(j)))
                .collect()
        })
        .collect();
    let now = world.current_year as f64;
    world
        .scholars()
        .iter()
        .map(|scholar| {
            let reviewer = scholar.id;
            for &a in &submission.authors {
                if a == reviewer
                    || world.ever_coauthored(a, reviewer)
                    || world.shared_affiliation(a, reviewer)
                {
                    return 0.0;
                }
            }
            let papers = world.papers_of(reviewer);
            if papers.is_empty() {
                return 0.0;
            }
            let mut per_topic_best = vec![0.0f64; submission.topics.len()];
            for &pid in papers {
                let p = world.paper(pid);
                let age = (now - p.year as f64).max(0.0);
                let recency = 0.5f64.powf(age / 6.0); // half-life of 6 years
                for (best, row) in per_topic_best.iter_mut().zip(&sim_table) {
                    let sim = p
                        .topics
                        .iter()
                        .map(|&pt| row[pt.index()])
                        .fold(0.0, f64::max);
                    *best = (*best).max(sim * (0.5 + 0.5 * recency));
                }
            }
            let coverage = per_topic_best.iter().sum::<f64>() / per_topic_best.len().max(1) as f64;
            coverage.clamp(0.0, 1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::generator::WorldGenerator;

    fn world() -> World {
        WorldGenerator::new(WorldConfig {
            scholars: 150,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn submissions_are_well_formed() {
        let w = world();
        let subs = SubmissionGenerator::new(&w, 7).generate_many(10);
        assert_eq!(subs.len(), 10);
        for s in &subs {
            assert!(!s.authors.is_empty() && s.authors.len() <= 4);
            assert!(!s.topics.is_empty() && s.topics.len() <= 5);
            assert_eq!(s.keywords.len(), s.topics.len());
            assert_eq!(w.venue(s.target_venue).kind, VenueKind::Journal);
            // Keywords resolve back to the same topics.
            for (kw, &t) in s.keywords.iter().zip(&s.topics) {
                assert_eq!(w.ontology.resolve(kw), Some(t));
            }
        }
    }

    #[test]
    fn generation_deterministic_per_seed() {
        let w = world();
        let a = SubmissionGenerator::new(&w, 3).generate_many(5);
        let b = SubmissionGenerator::new(&w, 3).generate_many(5);
        assert_eq!(a, b);
        let c = SubmissionGenerator::new(&w, 4).generate_many(5);
        assert_ne!(a, c);
    }

    #[test]
    fn authors_have_zero_relevance() {
        let w = world();
        let sub = SubmissionGenerator::new(&w, 1).generate().unwrap();
        for &a in &sub.authors {
            assert_eq!(ground_truth_relevance(&w, &sub, a), 0.0);
        }
    }

    #[test]
    fn coauthors_of_authors_have_zero_relevance() {
        let w = world();
        let sub = SubmissionGenerator::new(&w, 1).generate().unwrap();
        let co = w.coauthors_of(sub.authors[0]);
        for &c in co {
            assert_eq!(ground_truth_relevance(&w, &sub, c), 0.0);
        }
    }

    #[test]
    fn batched_relevance_matches_per_scholar_relevance() {
        let w = world();
        for seed in [1u64, 2, 5] {
            let sub = SubmissionGenerator::new(&w, seed).generate().unwrap();
            let all = ground_truth_relevance_all(&w, &sub);
            assert_eq!(all.len(), w.scholars().len());
            for s in w.scholars() {
                assert_eq!(all[s.id.index()], ground_truth_relevance(&w, &sub, s.id));
            }
        }
    }

    #[test]
    fn relevance_bounded_and_nonzero_for_someone() {
        let w = world();
        let sub = SubmissionGenerator::new(&w, 2).generate().unwrap();
        let mut any_positive = false;
        for s in w.scholars() {
            let r = ground_truth_relevance(&w, &sub, s.id);
            assert!((0.0..=1.0).contains(&r));
            if r > 0.0 {
                any_positive = true;
            }
        }
        assert!(any_positive, "no scholar relevant to the submission");
    }

    #[test]
    fn topically_matching_reviewer_beats_unrelated_one() {
        let w = world();
        let sub = SubmissionGenerator::new(&w, 5).generate().unwrap();
        // Best candidate by ground truth should publish on the topics.
        let best = w
            .scholars()
            .iter()
            .map(|s| (s.id, ground_truth_relevance(&w, &sub, s.id)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(best.1 > 0.3, "best relevance suspiciously low: {}", best.1);
    }
}
