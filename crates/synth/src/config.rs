//! World-generation parameters.

/// Configuration of the synthetic scholarly world.
///
/// Defaults produce a small world suitable for unit tests; the
/// experiments scale `scholars` into the tens of thousands.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// PRNG seed — the whole world is a pure function of the config.
    pub seed: u64,
    /// Number of scholars.
    pub scholars: usize,
    /// Number of institutions.
    pub institutions: usize,
    /// Number of journals.
    pub journals: usize,
    /// Number of conferences.
    pub conferences: usize,
    /// First simulated year (inclusive).
    pub start_year: u32,
    /// Last simulated year (inclusive) — "now" for recency scoring.
    pub end_year: u32,
    /// Mean number of papers a scholar authors per active year.
    pub papers_per_scholar_year: f64,
    /// Mean number of research interests per scholar.
    pub interests_per_scholar: usize,
    /// Probability that a newly generated scholar's full name exactly
    /// duplicates an earlier scholar's (drives experiment F4).
    pub name_collision_rate: f64,
    /// Fraction of scholars who perform manuscript reviews at all.
    pub reviewer_fraction: f64,
    /// Mean reviews per reviewing scholar per year.
    pub reviews_per_reviewer_year: f64,
    /// Probability a scholar changes institution in any given year.
    pub mobility_rate: f64,
    /// Mean number of coauthors per paper (beyond the first author).
    pub coauthors_per_paper: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x4D494E41, // "MINA"
            scholars: 500,
            institutions: 40,
            journals: 12,
            conferences: 12,
            start_year: 2000,
            end_year: 2018, // the paper's "now"
            papers_per_scholar_year: 0.8,
            interests_per_scholar: 4,
            name_collision_rate: 0.05,
            reviewer_fraction: 0.6,
            reviews_per_reviewer_year: 1.5,
            mobility_rate: 0.08,
            coauthors_per_paper: 2.2,
        }
    }
}

impl WorldConfig {
    /// A configuration scaled to `scholars` people, keeping venue and
    /// institution counts proportionate.
    pub fn sized(scholars: usize) -> Self {
        Self {
            scholars,
            institutions: (scholars / 12).clamp(10, 500),
            journals: (scholars / 40).clamp(8, 120),
            conferences: (scholars / 40).clamp(8, 120),
            ..Self::default()
        }
    }

    /// Number of simulated years.
    pub fn years(&self) -> u32 {
        self.end_year.saturating_sub(self.start_year) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_consistent() {
        let c = WorldConfig::default();
        assert!(c.start_year < c.end_year);
        assert!(c.scholars > 0 && c.institutions > 0);
        assert_eq!(c.years(), 19);
    }

    #[test]
    fn sized_scales_proportionately() {
        let c = WorldConfig::sized(12_000);
        assert_eq!(c.scholars, 12_000);
        assert!(c.institutions >= 100);
        assert!(c.journals >= 8 && c.conferences >= 8);
    }

    #[test]
    fn sized_clamps_small_worlds() {
        let c = WorldConfig::sized(10);
        assert_eq!(c.institutions, 10);
        assert_eq!(c.journals, 8);
    }
}
