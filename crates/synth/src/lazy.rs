//! Store-backed lazy world: summaries resident, blocks on demand.
//!
//! A [`LazyWorld`] opens a chunked (v2) snapshot and keeps only the
//! world-global tables (ontology, venues, institutions) plus a compact
//! per-scholar summary — interned name-pool indexes and interest topic
//! ids, a few bytes per scholar — in memory. Everything else (full
//! scholar records, papers, reviews) stays in `minaret-store` and is
//! decoded one community block at a time on first touch, through a
//! small FIFO block cache. Coauthors never cross community blocks (see
//! [`crate::COMMUNITY_BLOCK`]), so a single block read resolves every
//! reference one scholar's profile needs.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use minaret_ontology::{Ontology, TopicId};
use minaret_store::{Store, StoreError};

use crate::ids::{InstitutionId, ScholarId, VenueId};
use crate::model::{Institution, Paper, ReviewRecord, Scholar, Venue};
use crate::persist;

/// How many decoded blocks the cache keeps before evicting the oldest.
/// Profiles built from a block are memoized downstream (ProfileStore),
/// so re-decodes only happen for scholars never profiled before.
const BLOCK_CACHE_CAP: usize = 32;

/// One decoded community block of a [`LazyWorld`]: the scholars, the
/// papers they led, their reviews, and the per-scholar lookup tables a
/// profile build needs.
#[derive(Debug)]
pub struct WorldBlock {
    start: usize,
    scholars: Vec<Scholar>,
    papers: Vec<Paper>,
    reviews: Vec<ReviewRecord>,
    /// Local scholar index -> indexes into `papers`, in global order.
    papers_by_author: Vec<Vec<u32>>,
    /// Local scholar index -> indexes into `reviews`, in global order.
    reviews_by_scholar: Vec<Vec<u32>>,
}

impl WorldBlock {
    fn assemble(
        start: usize,
        scholars: Vec<Scholar>,
        papers: Vec<Paper>,
        reviews: Vec<ReviewRecord>,
    ) -> Self {
        let n = scholars.len();
        let mut papers_by_author = vec![Vec::new(); n];
        for (pi, p) in papers.iter().enumerate() {
            for &a in &p.authors {
                papers_by_author[a.index() - start].push(pi as u32);
            }
        }
        let mut reviews_by_scholar = vec![Vec::new(); n];
        for (ri, r) in reviews.iter().enumerate() {
            reviews_by_scholar[r.reviewer.index() - start].push(ri as u32);
        }
        Self {
            start,
            scholars,
            papers,
            reviews,
            papers_by_author,
            reviews_by_scholar,
        }
    }

    /// First scholar id in the block.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of scholars in the block.
    pub fn len(&self) -> usize {
        self.scholars.len()
    }

    /// True when the block holds no scholars.
    pub fn is_empty(&self) -> bool {
        self.scholars.is_empty()
    }

    /// True when `id` belongs to this block.
    pub fn contains(&self, id: ScholarId) -> bool {
        (self.start..self.start + self.scholars.len()).contains(&id.index())
    }

    fn local(&self, id: ScholarId) -> usize {
        debug_assert!(self.contains(id), "scholar outside its block");
        id.index() - self.start
    }

    /// Scholar by id (must belong to this block).
    pub fn scholar(&self, id: ScholarId) -> &Scholar {
        &self.scholars[self.local(id)]
    }

    /// Papers authored by `id`, in global paper order — identical to
    /// what the eager world's derived table yields.
    pub fn papers_of(&self, id: ScholarId) -> Vec<&Paper> {
        self.papers_by_author[self.local(id)]
            .iter()
            .map(|&pi| &self.papers[pi as usize])
            .collect()
    }

    /// Review records of `id`, in global review order.
    pub fn reviews_of(&self, id: ScholarId) -> Vec<&ReviewRecord> {
        self.reviews_by_scholar[self.local(id)]
            .iter()
            .map(|&ri| &self.reviews[ri as usize])
            .collect()
    }
}

/// Interned per-scholar summaries: the streamed snapshot's name strings
/// come from a small pool, so each scholar costs two `u16` pool indexes
/// plus its interest ids — a 10^6-scholar world stays tens of MB.
struct Summaries {
    pool: Vec<Arc<str>>,
    names: Vec<(u16, u16)>,
    interest_off: Vec<u32>,
    interest_flat: Vec<TopicId>,
}

impl Summaries {
    fn with_capacity(n: usize) -> Self {
        Self {
            pool: Vec::new(),
            names: Vec::with_capacity(n),
            interest_off: {
                let mut v = Vec::with_capacity(n + 1);
                v.push(0);
                v
            },
            interest_flat: Vec::new(),
        }
    }

    fn intern(&mut self, seen: &mut HashMap<String, u16>, s: String) -> u16 {
        if let Some(&i) = seen.get(&s) {
            return i;
        }
        let i = self.pool.len() as u16;
        self.pool.push(Arc::from(s.as_str()));
        seen.insert(s, i);
        i
    }

    fn push(
        &mut self,
        seen: &mut HashMap<String, u16>,
        given: String,
        family: String,
        interests: Vec<TopicId>,
    ) {
        let g = self.intern(seen, given);
        let f = self.intern(seen, family);
        self.names.push((g, f));
        self.interest_flat.extend(interests);
        self.interest_off.push(self.interest_flat.len() as u32);
    }

    fn get(&self, i: usize) -> (&str, &str, &[TopicId]) {
        let (g, f) = self.names[i];
        let (lo, hi) = (
            self.interest_off[i] as usize,
            self.interest_off[i + 1] as usize,
        );
        (
            &self.pool[g as usize],
            &self.pool[f as usize],
            &self.interest_flat[lo..hi],
        )
    }
}

/// A world opened from a chunked snapshot without materializing it.
pub struct LazyWorld {
    store: Arc<Store>,
    meta: persist::StreamMeta,
    ontology: Ontology,
    venues: Vec<Venue>,
    institutions: Vec<Institution>,
    summaries: Summaries,
    cache: Mutex<BlockCache>,
}

struct BlockCache {
    map: HashMap<usize, Arc<WorldBlock>>,
    order: VecDeque<usize>,
}

impl std::fmt::Debug for LazyWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyWorld")
            .field("scholars", &self.meta.scholars)
            .field("seed", &self.meta.seed)
            .field("chunks", &self.meta.chunks)
            .finish()
    }
}

impl LazyWorld {
    /// Opens the chunked snapshot in `store`, if one exists, loading
    /// only the global tables and the per-scholar summaries. `Ok(None)`
    /// means the store holds no chunked snapshot.
    pub fn open(store: Arc<Store>) -> Result<Option<Arc<LazyWorld>>, StoreError> {
        let Some(meta) = persist::get_stream_meta(&store)? else {
            return Ok(None);
        };
        let section = |key: &[u8], what: &'static str| -> Result<Vec<u8>, StoreError> {
            store.get(key)?.ok_or(StoreError::Codec {
                what,
                detail: "world snapshot is missing this section".into(),
            })
        };
        let tables =
            persist::decode_ontology(&section(b"world/ontology", "world ontology section")?)?;
        let ontology = Ontology::from_tables(tables).map_err(|e| StoreError::Codec {
            what: "world ontology section",
            detail: e.to_string(),
        })?;
        let venues = persist::decode_venues(&section(b"world/venues", "world venues section")?)?;
        let institutions = persist::decode_institutions(&section(
            b"world/institutions",
            "world institutions section",
        )?)?;
        let mut summaries = Summaries::with_capacity(meta.scholars as usize);
        let mut seen = HashMap::new();
        for k in 0..meta.chunks as usize {
            let chunk = persist::decode_summaries(&section(
                &persist::summaries_key(k),
                "world summaries section",
            )?)?;
            for ((given, family), interests) in chunk.names.into_iter().zip(chunk.interests) {
                summaries.push(&mut seen, given, family, interests);
            }
        }
        if summaries.names.len() != meta.scholars as usize {
            return Err(StoreError::Codec {
                what: "world summaries section",
                detail: format!(
                    "summaries cover {} scholars, meta says {}",
                    summaries.names.len(),
                    meta.scholars
                ),
            });
        }
        Ok(Some(Arc::new(LazyWorld {
            store,
            meta,
            ontology,
            venues,
            institutions,
            summaries,
            cache: Mutex::new(BlockCache {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
        })))
    }

    /// Number of scholars in the world.
    pub fn scholar_count(&self) -> usize {
        self.meta.scholars as usize
    }

    /// The generation seed the snapshot was built from.
    pub fn seed(&self) -> u64 {
        self.meta.seed
    }

    /// The simulation's current year.
    pub fn current_year(&self) -> u32 {
        self.meta.current_year
    }

    /// The topic ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// All venues (resident).
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// All institutions (resident).
    pub fn institutions(&self) -> &[Institution] {
        &self.institutions
    }

    /// Venue by id.
    pub fn venue(&self, id: VenueId) -> &Venue {
        &self.venues[id.index()]
    }

    /// Institution by id.
    pub fn institution(&self, id: InstitutionId) -> &Institution {
        &self.institutions[id.index()]
    }

    /// The compact summary of scholar `i`: given name, family name,
    /// ground-truth interest topics.
    pub fn summary(&self, i: usize) -> (&str, &str, &[TopicId]) {
        self.summaries.get(i)
    }

    /// The decoded community block containing `id`, from cache or by a
    /// point read against the store.
    pub fn block_for(&self, id: ScholarId) -> Result<Arc<WorldBlock>, StoreError> {
        self.block(id.index() / self.meta.block as usize)
    }

    /// The decoded community block `b`.
    pub fn block(&self, b: usize) -> Result<Arc<WorldBlock>, StoreError> {
        if let Some(hit) = self.cache.lock().expect("block cache poisoned").map.get(&b) {
            return Ok(hit.clone());
        }
        let section = |key: Vec<u8>, what: &'static str| -> Result<Vec<u8>, StoreError> {
            self.store.get(&key)?.ok_or(StoreError::Codec {
                what,
                detail: format!("chunk {b} missing from world snapshot"),
            })
        };
        let scholars = persist::decode_scholars(&section(
            persist::chunk_key(b, "scholars"),
            "world chunk scholars section",
        )?)?;
        let papers = persist::decode_papers(&section(
            persist::chunk_key(b, "papers"),
            "world chunk papers section",
        )?)?;
        let reviews = persist::decode_reviews(&section(
            persist::chunk_key(b, "reviews"),
            "world chunk reviews section",
        )?)?;
        let block = Arc::new(WorldBlock::assemble(
            b * self.meta.block as usize,
            scholars,
            papers,
            reviews,
        ));
        let mut cache = self.cache.lock().expect("block cache poisoned");
        let cache = &mut *cache;
        if let std::collections::hash_map::Entry::Vacant(slot) = cache.map.entry(b) {
            slot.insert(block.clone());
            cache.order.push_back(b);
            while cache.order.len() > BLOCK_CACHE_CAP {
                if let Some(evict) = cache.order.pop_front() {
                    cache.map.remove(&evict);
                }
            }
        }
        Ok(block)
    }
}
