//! The world generator.

use minaret_ontology::Ontology;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::WorldConfig;
use crate::stream::StreamingGenerator;
use crate::world::World;

/// Generates a [`World`] from a [`WorldConfig`] and an [`Ontology`].
///
/// The same `(config, ontology)` pair always yields the same world.
/// This is the monolithic facade over [`StreamingGenerator`]: it drains
/// the chunk stream and assembles the result, so its output is
/// byte-identical to any chunked emission of the same config.
#[derive(Debug, Clone)]
pub struct WorldGenerator {
    config: WorldConfig,
}

impl WorldGenerator {
    /// Creates a generator.
    pub fn new(config: WorldConfig) -> Self {
        Self { config }
    }

    /// Generates the world against the curated CS ontology.
    pub fn generate(&self) -> World {
        StreamingGenerator::new(self.config.clone()).generate_world()
    }

    /// Generates the world against a caller-provided ontology.
    pub fn generate_with(&self, ontology: Ontology) -> World {
        StreamingGenerator::with_ontology(self.config.clone(), ontology).generate_world()
    }
}

/// Knuth's Poisson sampler — fine for the small λ used here.
pub(crate) fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 50 {
            return k; // guard against pathological λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_world() -> World {
        WorldGenerator::new(WorldConfig {
            scholars: 120,
            institutions: 10,
            journals: 5,
            conferences: 5,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world().stats();
        let b = small_world().stats();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldGenerator::new(WorldConfig {
            scholars: 120,
            seed: 1,
            ..Default::default()
        })
        .generate()
        .stats();
        let b = WorldGenerator::new(WorldConfig {
            scholars: 120,
            seed: 2,
            ..Default::default()
        })
        .generate()
        .stats();
        assert_ne!(a, b);
    }

    #[test]
    fn every_scholar_has_affiliation_and_interests() {
        let w = small_world();
        for s in w.scholars() {
            assert!(!s.affiliations.is_empty());
            assert!(!s.interests.is_empty());
            assert!(s.affiliations.last().unwrap().to_year == 2018);
        }
    }

    #[test]
    fn affiliation_spans_are_contiguous_and_ordered() {
        let w = small_world();
        for s in w.scholars() {
            let mut prev_end: Option<u32> = None;
            for a in &s.affiliations {
                assert!(a.from_year <= a.to_year);
                if let Some(pe) = prev_end {
                    assert_eq!(a.from_year, pe + 1, "gap in affiliation history");
                }
                prev_end = Some(a.to_year);
            }
        }
    }

    #[test]
    fn papers_have_valid_references() {
        let w = small_world();
        assert!(!w.papers().is_empty());
        for p in w.papers() {
            assert!(!p.authors.is_empty());
            assert!(!p.topics.is_empty());
            assert!((p.venue.index()) < w.venues().len());
            assert!(p.year >= 2000 && p.year <= 2018);
            for a in &p.authors {
                assert!(a.index() < w.scholars().len());
                assert!(w.scholar(*a).active_since <= p.year);
            }
        }
    }

    #[test]
    fn name_collisions_appear_at_configured_rate() {
        let w = WorldGenerator::new(WorldConfig {
            scholars: 400,
            name_collision_rate: 0.3,
            ..Default::default()
        })
        .generate();
        let stats = w.stats();
        // Forced rate 0.3 guarantees a healthy number of colliding names.
        assert!(
            stats.colliding_scholars as f64 >= 0.2 * 400.0,
            "got {} colliding scholars",
            stats.colliding_scholars
        );
    }

    #[test]
    fn reviews_reference_valid_entities() {
        let w = small_world();
        assert!(!w.reviews().is_empty());
        for r in w.reviews() {
            assert!(r.reviewer.index() < w.scholars().len());
            assert!(r.venue.index() < w.venues().len());
            assert!(r.turnaround_days >= 7);
        }
    }

    #[test]
    fn review_quality_is_in_range_and_scholar_correlated() {
        let w = small_world();
        let mut per_scholar: std::collections::HashMap<_, Vec<u8>> =
            std::collections::HashMap::new();
        for r in w.reviews() {
            assert!((1..=5).contains(&r.quality));
            per_scholar.entry(r.reviewer).or_default().push(r.quality);
        }
        // Quality is a per-scholar trait with ±1 noise: within-scholar
        // spread must be small for scholars with several reviews.
        let mut checked = 0;
        for quals in per_scholar.values().filter(|q| q.len() >= 5) {
            let min = *quals.iter().min().unwrap();
            let max = *quals.iter().max().unwrap();
            assert!(max - min <= 3, "quality spread {min}..{max} too wide");
            checked += 1;
        }
        assert!(checked > 5, "not enough multi-review scholars to check");
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 2.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn scholars_interests_are_topically_coherent() {
        // At least some scholars should have >1 interest, and interests
        // should frequently be ontology-adjacent to the home topic.
        let w = small_world();
        let multi = w
            .scholars()
            .iter()
            .filter(|s| s.interests.len() > 1)
            .count();
        assert!(multi > w.scholars().len() / 2);
    }
}
