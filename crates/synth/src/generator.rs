//! The world generator.

use std::collections::HashMap;

use minaret_ontology::{Ontology, TopicId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::WorldConfig;
use crate::ids::{InstitutionId, PaperId, ScholarId, VenueId};
use crate::model::{AffiliationSpan, Institution, Paper, ReviewRecord, Scholar, Venue, VenueKind};
use crate::names::{institution_country, institution_name, NamePool};
use crate::world::World;

/// Generates a [`World`] from a [`WorldConfig`] and an [`Ontology`].
///
/// The same `(config, ontology)` pair always yields the same world.
#[derive(Debug, Clone)]
pub struct WorldGenerator {
    config: WorldConfig,
}

impl WorldGenerator {
    /// Creates a generator.
    pub fn new(config: WorldConfig) -> Self {
        Self { config }
    }

    /// Generates the world against the curated CS ontology.
    pub fn generate(&self) -> World {
        self.generate_with(minaret_ontology::seed::curated_cs_ontology())
    }

    /// Generates the world against a caller-provided ontology.
    pub fn generate_with(&self, ontology: Ontology) -> World {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let institutions: Vec<Institution> = (0..cfg.institutions.max(1))
            .map(|i| Institution {
                id: InstitutionId(i as u32),
                name: institution_name(i),
                country: institution_country(i),
            })
            .collect();

        let topic_pool: Vec<TopicId> = ontology.topics().map(|t| t.id).collect();

        let venues = self.gen_venues(&mut rng, &topic_pool);
        let scholars = self.gen_scholars(&mut rng, &ontology, &topic_pool, institutions.len());

        // topic -> scholars interested in it, for coauthor/venue matching.
        let mut by_topic: HashMap<TopicId, Vec<ScholarId>> = HashMap::new();
        for s in &scholars {
            for &t in &s.interests {
                by_topic.entry(t).or_default().push(s.id);
            }
        }
        let mut venues_by_topic: HashMap<TopicId, Vec<VenueId>> = HashMap::new();
        for v in &venues {
            for &t in &v.topics {
                venues_by_topic.entry(t).or_default().push(v.id);
            }
        }

        let papers = self.gen_papers(&mut rng, &scholars, &venues, &by_topic, &venues_by_topic);
        let reviews = self.gen_reviews(&mut rng, &scholars, &venues, &venues_by_topic);

        World::assemble(
            ontology,
            cfg.end_year,
            scholars,
            papers,
            venues,
            institutions,
            reviews,
        )
    }

    fn gen_venues(&self, rng: &mut StdRng, topic_pool: &[TopicId]) -> Vec<Venue> {
        let cfg = &self.config;
        let mut venues = Vec::with_capacity(cfg.journals + cfg.conferences);
        for i in 0..cfg.journals + cfg.conferences {
            let kind = if i < cfg.journals {
                VenueKind::Journal
            } else {
                VenueKind::Conference
            };
            let n_topics = rng.gen_range(2..=4).min(topic_pool.len());
            let mut topics = Vec::with_capacity(n_topics);
            while topics.len() < n_topics {
                let t = topic_pool[rng.gen_range(0..topic_pool.len())];
                if !topics.contains(&t) {
                    topics.push(t);
                }
            }
            let name = match kind {
                VenueKind::Journal => format!("Journal of Synthetic Computing {}", i + 1),
                VenueKind::Conference => {
                    format!(
                        "International Conference on Synthetic Systems {}",
                        i + 1 - cfg.journals
                    )
                }
            };
            venues.push(Venue {
                id: VenueId(i as u32),
                name,
                kind,
                topics,
            });
        }
        venues
    }

    fn gen_scholars(
        &self,
        rng: &mut StdRng,
        ontology: &Ontology,
        topic_pool: &[TopicId],
        n_institutions: usize,
    ) -> Vec<Scholar> {
        let cfg = &self.config;
        let mut pool = NamePool::new(cfg.name_collision_rate);
        let mut scholars = Vec::with_capacity(cfg.scholars);
        for i in 0..cfg.scholars {
            let (given, family) = pool.draw(rng);
            let active_since = rng.gen_range(cfg.start_year..=cfg.end_year.saturating_sub(1));
            // Affiliation history: start somewhere, move with mobility_rate.
            let mut affiliations = Vec::new();
            let mut inst = rng.gen_range(0..n_institutions);
            let mut from = active_since;
            for year in active_since..=cfg.end_year {
                if year > from && rng.gen::<f64>() < cfg.mobility_rate {
                    affiliations.push(AffiliationSpan {
                        institution: InstitutionId(inst as u32),
                        from_year: from,
                        to_year: year - 1,
                    });
                    let mut next = rng.gen_range(0..n_institutions);
                    if n_institutions > 1 {
                        while next == inst {
                            next = rng.gen_range(0..n_institutions);
                        }
                    }
                    inst = next;
                    from = year;
                }
            }
            affiliations.push(AffiliationSpan {
                institution: InstitutionId(inst as u32),
                from_year: from,
                to_year: cfg.end_year,
            });
            // Interests: one "home" topic plus semantically nearby topics,
            // so scholars are topically coherent like real researchers.
            let home = topic_pool[rng.gen_range(0..topic_pool.len())];
            let mut interests = vec![home];
            let mut frontier: Vec<TopicId> = ontology
                .related(home)
                .iter()
                .chain(ontology.parents(home))
                .chain(ontology.children(home))
                .copied()
                .collect();
            while interests.len() < cfg.interests_per_scholar.max(1) {
                let t = if !frontier.is_empty() && rng.gen::<f64>() < 0.7 {
                    frontier.swap_remove(rng.gen_range(0..frontier.len()))
                } else {
                    topic_pool[rng.gen_range(0..topic_pool.len())]
                };
                if !interests.contains(&t) {
                    interests.push(t);
                }
                if frontier.is_empty() && interests.len() >= 2 && rng.gen::<f64>() < 0.1 {
                    break;
                }
            }
            scholars.push(Scholar {
                id: ScholarId(i as u32),
                given_name: given,
                family_name: family,
                affiliations,
                interests,
                active_since,
            });
        }
        scholars
    }

    fn gen_papers(
        &self,
        rng: &mut StdRng,
        scholars: &[Scholar],
        venues: &[Venue],
        by_topic: &HashMap<TopicId, Vec<ScholarId>>,
        venues_by_topic: &HashMap<TopicId, Vec<VenueId>>,
    ) -> Vec<Paper> {
        let cfg = &self.config;
        let mut papers = Vec::new();
        // Preferential attachment over prior coauthors.
        let mut prior_coauthors: Vec<Vec<ScholarId>> = vec![Vec::new(); scholars.len()];
        for year in cfg.start_year..=cfg.end_year {
            for s in scholars {
                if year < s.active_since {
                    continue;
                }
                for _ in 0..poisson(rng, cfg.papers_per_scholar_year) {
                    let lead = s.id;
                    // Paper topics: 1-3 of the lead's interests.
                    let n_topics = rng.gen_range(1..=3.min(s.interests.len()));
                    let mut topics = Vec::with_capacity(n_topics);
                    while topics.len() < n_topics {
                        let t = s.interests[rng.gen_range(0..s.interests.len())];
                        if !topics.contains(&t) {
                            topics.push(t);
                        }
                    }
                    // Coauthors: prior collaborators first, then scholars
                    // sharing the paper's topics.
                    let n_co = poisson(rng, cfg.coauthors_per_paper).min(6);
                    let mut authors = vec![lead];
                    for _ in 0..n_co {
                        let cand = if !prior_coauthors[lead.index()].is_empty()
                            && rng.gen::<f64>() < 0.5
                        {
                            let pc = &prior_coauthors[lead.index()];
                            Some(pc[rng.gen_range(0..pc.len())])
                        } else {
                            by_topic
                                .get(&topics[rng.gen_range(0..topics.len())])
                                .filter(|v| !v.is_empty())
                                .map(|v| v[rng.gen_range(0..v.len())])
                        };
                        if let Some(c) = cand {
                            if !authors.contains(&c) && scholars[c.index()].active_since <= year {
                                authors.push(c);
                            }
                        }
                    }
                    for &a in &authors {
                        for &b in &authors {
                            if a != b && !prior_coauthors[a.index()].contains(&b) {
                                prior_coauthors[a.index()].push(b);
                            }
                        }
                    }
                    // Venue: one that covers a paper topic when possible.
                    let venue = topics
                        .iter()
                        .filter_map(|t| venues_by_topic.get(t))
                        .flat_map(|v| v.iter())
                        .next()
                        .copied()
                        .unwrap_or_else(|| VenueId(rng.gen_range(0..venues.len()) as u32));
                    // Citations: heavy-tailed, growing with age.
                    let age = (cfg.end_year - year) as f64;
                    let burst = (-(rng.gen::<f64>().max(1e-12)).ln()).powf(2.0);
                    let citations = (burst * (1.0 + age * 1.5)) as u32;
                    let id = PaperId(papers.len() as u32);
                    papers.push(Paper {
                        id,
                        title: format!("On synthetic result #{} ({year})", papers.len()),
                        year,
                        venue,
                        authors,
                        topics,
                        citations,
                    });
                }
            }
        }
        papers
    }

    fn gen_reviews(
        &self,
        rng: &mut StdRng,
        scholars: &[Scholar],
        venues: &[Venue],
        venues_by_topic: &HashMap<TopicId, Vec<VenueId>>,
    ) -> Vec<ReviewRecord> {
        let cfg = &self.config;
        let mut reviews = Vec::new();
        for s in scholars {
            if rng.gen::<f64>() >= cfg.reviewer_fraction {
                continue;
            }
            for year in s.active_since..=cfg.end_year {
                for _ in 0..poisson(rng, cfg.reviews_per_reviewer_year) {
                    // Review for a venue in the scholar's area when possible.
                    let venue = s
                        .interests
                        .iter()
                        .filter_map(|t| venues_by_topic.get(t))
                        .filter(|v| !v.is_empty())
                        .map(|v| v[rng.gen_range(0..v.len())])
                        .next()
                        .unwrap_or_else(|| VenueId(rng.gen_range(0..venues.len()) as u32));
                    let turnaround_days = 7 + (rng.gen::<f64>() * 60.0) as u32;
                    // Quality is a per-scholar trait with per-review noise.
                    let base = 2.0 + 3.0 * (s.id.0 as f64 * 0.618).fract();
                    let quality = (base + rng.gen_range(-1.0..1.0)).round().clamp(1.0, 5.0) as u8;
                    reviews.push(ReviewRecord {
                        reviewer: s.id,
                        venue,
                        year,
                        turnaround_days,
                        quality,
                    });
                }
            }
        }
        reviews
    }
}

/// Knuth's Poisson sampler — fine for the small λ used here.
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 50 {
            return k; // guard against pathological λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        WorldGenerator::new(WorldConfig {
            scholars: 120,
            institutions: 10,
            journals: 5,
            conferences: 5,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_world().stats();
        let b = small_world().stats();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorldGenerator::new(WorldConfig {
            scholars: 120,
            seed: 1,
            ..Default::default()
        })
        .generate()
        .stats();
        let b = WorldGenerator::new(WorldConfig {
            scholars: 120,
            seed: 2,
            ..Default::default()
        })
        .generate()
        .stats();
        assert_ne!(a, b);
    }

    #[test]
    fn every_scholar_has_affiliation_and_interests() {
        let w = small_world();
        for s in w.scholars() {
            assert!(!s.affiliations.is_empty());
            assert!(!s.interests.is_empty());
            assert!(s.affiliations.last().unwrap().to_year == 2018);
        }
    }

    #[test]
    fn affiliation_spans_are_contiguous_and_ordered() {
        let w = small_world();
        for s in w.scholars() {
            let mut prev_end: Option<u32> = None;
            for a in &s.affiliations {
                assert!(a.from_year <= a.to_year);
                if let Some(pe) = prev_end {
                    assert_eq!(a.from_year, pe + 1, "gap in affiliation history");
                }
                prev_end = Some(a.to_year);
            }
        }
    }

    #[test]
    fn papers_have_valid_references() {
        let w = small_world();
        assert!(!w.papers().is_empty());
        for p in w.papers() {
            assert!(!p.authors.is_empty());
            assert!(!p.topics.is_empty());
            assert!((p.venue.index()) < w.venues().len());
            assert!(p.year >= 2000 && p.year <= 2018);
            for a in &p.authors {
                assert!(a.index() < w.scholars().len());
                assert!(w.scholar(*a).active_since <= p.year);
            }
        }
    }

    #[test]
    fn name_collisions_appear_at_configured_rate() {
        let w = WorldGenerator::new(WorldConfig {
            scholars: 400,
            name_collision_rate: 0.3,
            ..Default::default()
        })
        .generate();
        let stats = w.stats();
        // Forced rate 0.3 guarantees a healthy number of colliding names.
        assert!(
            stats.colliding_scholars as f64 >= 0.2 * 400.0,
            "got {} colliding scholars",
            stats.colliding_scholars
        );
    }

    #[test]
    fn reviews_reference_valid_entities() {
        let w = small_world();
        assert!(!w.reviews().is_empty());
        for r in w.reviews() {
            assert!(r.reviewer.index() < w.scholars().len());
            assert!(r.venue.index() < w.venues().len());
            assert!(r.turnaround_days >= 7);
        }
    }

    #[test]
    fn review_quality_is_in_range_and_scholar_correlated() {
        let w = small_world();
        let mut per_scholar: std::collections::HashMap<_, Vec<u8>> =
            std::collections::HashMap::new();
        for r in w.reviews() {
            assert!((1..=5).contains(&r.quality));
            per_scholar.entry(r.reviewer).or_default().push(r.quality);
        }
        // Quality is a per-scholar trait with ±1 noise: within-scholar
        // spread must be small for scholars with several reviews.
        let mut checked = 0;
        for quals in per_scholar.values().filter(|q| q.len() >= 5) {
            let min = *quals.iter().min().unwrap();
            let max = *quals.iter().max().unwrap();
            assert!(max - min <= 3, "quality spread {min}..{max} too wide");
            checked += 1;
        }
        assert!(checked > 5, "not enough multi-review scholars to check");
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 2.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn scholars_interests_are_topically_coherent() {
        // At least some scholars should have >1 interest, and interests
        // should frequently be ontology-adjacent to the home topic.
        let w = small_world();
        let multi = w
            .scholars()
            .iter()
            .filter(|s| s.interests.len() > 1)
            .count();
        assert!(multi > w.scholars().len() / 2);
    }
}
