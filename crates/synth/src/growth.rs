//! DBLP-style publication growth model (Figure 1 of the paper).
//!
//! The paper motivates MINARET with DBLP's statistics: ~3.8M indexed
//! publications in 2018, ~120K journal articles added in 2018, and the
//! claim that global scientific output doubles every nine years. This
//! module is an analytic model producing a records-per-year series by
//! publication type with exactly those properties, so experiment F1 can
//! regenerate the figure's shape.

/// Publication types shown in the DBLP figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordKind {
    /// Journal articles.
    JournalArticle,
    /// Conference and workshop papers.
    ConferencePaper,
    /// Informal publications (preprints etc.).
    Informal,
    /// Books and theses.
    BookOrThesis,
    /// Editorship records.
    Editorship,
    /// Parts in books or collections.
    PartInCollection,
    /// Reference works.
    ReferenceWork,
}

impl RecordKind {
    /// All kinds, in the order the figure's legend lists them.
    pub const ALL: [RecordKind; 7] = [
        RecordKind::JournalArticle,
        RecordKind::ConferencePaper,
        RecordKind::Informal,
        RecordKind::BookOrThesis,
        RecordKind::Editorship,
        RecordKind::PartInCollection,
        RecordKind::ReferenceWork,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            RecordKind::JournalArticle => "Journal Articles",
            RecordKind::ConferencePaper => "Conference and Workshop Papers",
            RecordKind::Informal => "Informal Publications",
            RecordKind::BookOrThesis => "Books and Theses",
            RecordKind::Editorship => "Editorship",
            RecordKind::PartInCollection => "Parts in Books or Collections",
            RecordKind::ReferenceWork => "Reference Works",
        }
    }

    /// Share of yearly records attributed to this kind. Calibrated to the
    /// rough DBLP mix visible in Figure 1 (conference papers dominate,
    /// journal articles second, the rest are small). Sums to 1.
    pub fn share(self) -> f64 {
        match self {
            RecordKind::JournalArticle => 0.27,
            RecordKind::ConferencePaper => 0.50,
            RecordKind::Informal => 0.15,
            RecordKind::BookOrThesis => 0.03,
            RecordKind::Editorship => 0.02,
            RecordKind::PartInCollection => 0.02,
            RecordKind::ReferenceWork => 0.01,
        }
    }
}

/// Exponential-growth model of new records per year.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthModel {
    /// First modeled year.
    pub start_year: u32,
    /// Reference ("current") year for the calibration totals.
    pub reference_year: u32,
    /// Doubling period in years (the paper cites nine).
    pub doubling_years: f64,
    /// Total new records added in `reference_year` (all kinds).
    pub records_in_reference_year: f64,
}

impl Default for GrowthModel {
    /// Calibrated to the paper: reference year 2018, ~120K journal
    /// articles in 2018 (so ≈ 444K records total that year at a 27%
    /// journal share), doubling every 9 years, starting at 1990 like the
    /// DBLP figure.
    fn default() -> Self {
        Self {
            start_year: 1990,
            reference_year: 2018,
            doubling_years: 9.0,
            records_in_reference_year: 120_000.0 / RecordKind::JournalArticle.share(),
        }
    }
}

impl GrowthModel {
    /// New records of all kinds added in `year`.
    pub fn records_in_year(&self, year: u32) -> f64 {
        let dt = year as f64 - self.reference_year as f64;
        self.records_in_reference_year * 2f64.powf(dt / self.doubling_years)
    }

    /// New records of `kind` added in `year`.
    pub fn records_of_kind(&self, year: u32, kind: RecordKind) -> f64 {
        self.records_in_year(year) * kind.share()
    }

    /// Cumulative records from `start_year` through `year` inclusive.
    pub fn cumulative_through(&self, year: u32) -> f64 {
        (self.start_year..=year)
            .map(|y| self.records_in_year(y))
            .sum()
    }

    /// The full per-year series for one kind, `start_year..=end_year`.
    pub fn series(&self, kind: RecordKind, end_year: u32) -> Vec<(u32, f64)> {
        (self.start_year..=end_year)
            .map(|y| (y, self.records_of_kind(y, kind)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = RecordKind::ALL.iter().map(|k| k.share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn doubling_every_nine_years() {
        let m = GrowthModel::default();
        let r = m.records_in_year(2009);
        let r2 = m.records_in_year(2018);
        assert!((r2 / r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn journal_articles_2018_match_paper_figure() {
        let m = GrowthModel::default();
        let j = m.records_of_kind(2018, RecordKind::JournalArticle);
        assert!((j - 120_000.0).abs() < 1.0, "got {j}");
    }

    #[test]
    fn cumulative_total_is_dblp_scale() {
        // The paper says DBLP indexes over 3.8M publications. The
        // analytic model integrates to the same order of magnitude.
        let m = GrowthModel::default();
        let total = m.cumulative_through(2018);
        assert!(
            (3_000_000.0..8_000_000.0).contains(&total),
            "cumulative {total}"
        );
    }

    #[test]
    fn series_is_monotonically_increasing() {
        let m = GrowthModel::default();
        let s = m.series(RecordKind::ConferencePaper, 2018);
        assert_eq!(s.len(), 29);
        for w in s.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            RecordKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), RecordKind::ALL.len());
    }
}
