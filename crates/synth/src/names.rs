//! Name generation with deliberate collisions.
//!
//! §2.1 of the paper motivates identity verification with name ambiguity
//! ("in the far east, many scholars may share one of the popular names",
//! citing DBLP's `Zhou:Lei` page). The generator therefore draws family
//! names from a Zipf-like distribution over a modest pool, and a
//! configurable `collision_rate` forces a fraction of scholars to share a
//! *complete* full name with an earlier scholar, creating the hard
//! disambiguation cases that experiment F4 sweeps.

use rand::rngs::StdRng;
use rand::Rng;

const GIVEN: &[&str] = &[
    "Lei", "Wei", "Jing", "Ming", "Hao", "Yan", "Mohamed", "Ahmed", "Sara", "Omar", "Fatima",
    "Anna", "Ivan", "Elena", "Dmitri", "Olga", "John", "Mary", "James", "Linda", "Robert",
    "Patricia", "Michael", "Jennifer", "David", "Maria", "Carlos", "Ana", "Jose", "Lucia", "Hans",
    "Greta", "Klaus", "Ingrid", "Pierre", "Marie", "Jean", "Sophie", "Kenji", "Yuki", "Hiroshi",
    "Aiko", "Raj", "Priya", "Arjun", "Divya", "Kwame", "Amara", "Tunde", "Zainab", "Erik",
    "Astrid", "Lars", "Freja", "Marco", "Giulia", "Luca", "Chiara", "Pavel", "Katya",
];

const FAMILY: &[&str] = &[
    "Zhou",
    "Wang",
    "Li",
    "Zhang",
    "Chen",
    "Liu",
    "Yang",
    "Huang",
    "Kim",
    "Lee",
    "Park",
    "Nguyen",
    "Tran",
    "Sato",
    "Suzuki",
    "Tanaka",
    "Singh",
    "Kumar",
    "Patel",
    "Sharma",
    "Hassan",
    "Ali",
    "Ibrahim",
    "Sakr",
    "Awad",
    "Maher",
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Martinez",
    "Rodriguez",
    "Lopez",
    "Gonzalez",
    "Mueller",
    "Schmidt",
    "Schneider",
    "Fischer",
    "Weber",
    "Meyer",
    "Dubois",
    "Moreau",
    "Laurent",
    "Rossi",
    "Russo",
    "Ferrari",
    "Esposito",
    "Ivanov",
    "Petrov",
    "Smirnov",
    "Kuznetsov",
    "Andersen",
    "Johansson",
    "Korhonen",
    "Tamm",
    "Kask",
    "Okafor",
    "Mensah",
    "Diallo",
];

/// Draws a fresh `(given, family)` index pair from the pools. The
/// family-name draw is Zipf-ish: squaring the uniform draw favours low
/// indices, so popular family names recur like they do on DBLP.
pub(crate) fn base_pair(rng: &mut StdRng) -> (usize, usize) {
    let g = rng.gen_range(0..GIVEN.len());
    let f = ((rng.gen::<f64>().powi(2)) * FAMILY.len() as f64) as usize;
    (g, f.min(FAMILY.len() - 1))
}

/// The name strings for a pool index pair.
pub(crate) fn pair_strings(pair: (usize, usize)) -> (String, String) {
    (GIVEN[pair.0].to_string(), FAMILY[pair.1].to_string())
}

/// Generates a synthetic institution name for index `i`.
pub(crate) fn institution_name(i: usize) -> String {
    const CITIES: &[&str] = &[
        "Tartu",
        "Lisbon",
        "Cairo",
        "Beijing",
        "Tokyo",
        "Berlin",
        "Paris",
        "Madrid",
        "Rome",
        "Moscow",
        "Delhi",
        "Lagos",
        "Nairobi",
        "Boston",
        "Seattle",
        "Toronto",
        "Sydney",
        "Helsinki",
        "Oslo",
        "Vienna",
        "Zurich",
        "Prague",
        "Warsaw",
        "Seoul",
        "Singapore",
    ];
    const KINDS: &[&str] = &[
        "University of",
        "Institute of Technology of",
        "National Lab of",
    ];
    let city = CITIES[i % CITIES.len()];
    let kind = KINDS[(i / CITIES.len()) % KINDS.len()];
    if i < CITIES.len() {
        format!("University of {city}")
    } else {
        format!("{kind} {city} {}", i / (CITIES.len() * KINDS.len()) + 1)
    }
}

/// Country for institution index `i` (stable mapping so COI country
/// checks are deterministic).
pub(crate) fn institution_country(i: usize) -> String {
    const COUNTRIES: &[&str] = &[
        "Estonia",
        "Portugal",
        "Egypt",
        "China",
        "Japan",
        "Germany",
        "France",
        "Spain",
        "Italy",
        "Russia",
        "India",
        "Nigeria",
        "Kenya",
        "USA",
        "USA",
        "Canada",
        "Australia",
        "Finland",
        "Norway",
        "Austria",
        "Switzerland",
        "Czechia",
        "Poland",
        "South Korea",
        "Singapore",
    ];
    COUNTRIES[i % COUNTRIES.len()].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn base_pairs_cover_the_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        let names: Vec<_> = (0..200)
            .map(|_| pair_strings(base_pair(&mut rng)))
            .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert!(unique.len() > 100, "expected mostly unique names");
    }

    #[test]
    fn institution_names_unique_for_reasonable_counts() {
        let names: Vec<_> = (0..150).map(institution_name).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn countries_stable() {
        assert_eq!(institution_country(0), "Estonia");
        assert_eq!(institution_country(25), "Estonia");
    }
}
