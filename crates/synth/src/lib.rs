//! Synthetic scholarly-world generator for the MINARET reproduction.
//!
//! MINARET's prototype scrapes live scholarly websites. Those cannot be
//! reached here, so this crate generates a *coherent* synthetic world —
//! scholars, institutions, venues, papers, co-authorship, citations and
//! review histories — that the simulated sources in `minaret-scholarly`
//! each expose a partial, noisy view of.
//!
//! Because the world is generated, it comes with ground truth the real
//! web never offers: true author identities (including deliberate name
//! collisions for the disambiguation experiments), true conflict-of-
//! interest edges, and true topical expertise — which makes the accuracy
//! experiments in `minaret-eval` measurable.
//!
//! Entry points:
//!
//! * [`WorldConfig`] / [`WorldGenerator`] — configure and generate a
//!   [`World`].
//! * [`growth::GrowthModel`] — the DBLP-style records-per-year model
//!   behind Figure 1 of the paper.
//! * [`SubmissionSpec`] — synthetic manuscript submissions with graded
//!   ground-truth reviewer relevance.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod generator;
pub mod growth;
mod ids;
mod lazy;
mod model;
mod names;
pub mod persist;
mod stream;
mod submissions;
mod view;
mod world;

pub use config::WorldConfig;
pub use generator::WorldGenerator;
pub use ids::{InstitutionId, PaperId, ScholarId, VenueId};
pub use lazy::{LazyWorld, WorldBlock};
pub use model::{AffiliationSpan, Institution, Paper, ReviewRecord, Scholar, Venue, VenueKind};
pub use persist::{
    load_world, snapshot_world, stream_snapshot_world, world_fingerprint, SnapshotMeta,
    StreamProgress, StreamTotals,
};
pub use stream::{derive_seed, ChunkIter, StreamingGenerator, WorldChunk, COMMUNITY_BLOCK};
pub use submissions::{
    ground_truth_relevance, ground_truth_relevance_all, SubmissionGenerator, SubmissionSpec,
};
pub use view::{WorldHandle, WorldScope};
pub use world::{World, WorldStats};
