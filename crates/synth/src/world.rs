//! The generated world and its derived views.

use std::collections::HashMap;

use minaret_ontology::{Ontology, TopicId};

use crate::ids::{InstitutionId, PaperId, ScholarId, VenueId};
use crate::model::{Institution, Paper, ReviewRecord, Scholar, Venue};

/// A complete synthetic scholarly world plus derived lookup tables.
///
/// The raw entity tables are the ground truth; the derived tables
/// (papers-by-author, co-author sets, citation totals, h-indexes,
/// review counts) are computed once at construction and are what both the
/// simulated sources and the evaluation harness read.
#[derive(Debug)]
pub struct World {
    /// The topic ontology the world was generated against.
    pub ontology: Ontology,
    /// Current year of the simulation ("now" for recency).
    pub current_year: u32,
    scholars: Vec<Scholar>,
    papers: Vec<Paper>,
    venues: Vec<Venue>,
    institutions: Vec<Institution>,
    reviews: Vec<ReviewRecord>,
    // Derived:
    papers_by_author: Vec<Vec<PaperId>>,
    coauthors: Vec<Vec<ScholarId>>,
    citations: Vec<u64>,
    h_index: Vec<u32>,
    reviews_by_scholar: Vec<Vec<usize>>,
    pubs_by_scholar_venue: HashMap<(ScholarId, VenueId), u32>,
}

impl World {
    /// Assembles a world from raw tables, computing all derived views.
    pub fn assemble(
        ontology: Ontology,
        current_year: u32,
        scholars: Vec<Scholar>,
        papers: Vec<Paper>,
        venues: Vec<Venue>,
        institutions: Vec<Institution>,
        reviews: Vec<ReviewRecord>,
    ) -> Self {
        let n = scholars.len();
        let mut papers_by_author = vec![Vec::new(); n];
        let mut coauthors: Vec<Vec<ScholarId>> = vec![Vec::new(); n];
        let mut citations = vec![0u64; n];
        let mut pubs_by_scholar_venue: HashMap<(ScholarId, VenueId), u32> = HashMap::new();
        for p in &papers {
            for &a in &p.authors {
                papers_by_author[a.index()].push(p.id);
                citations[a.index()] += p.citations as u64;
                *pubs_by_scholar_venue.entry((a, p.venue)).or_insert(0) += 1;
                for &b in &p.authors {
                    if a != b && !coauthors[a.index()].contains(&b) {
                        coauthors[a.index()].push(b);
                    }
                }
            }
        }
        let mut h_index = vec![0u32; n];
        for (i, pids) in papers_by_author.iter().enumerate() {
            let mut cites: Vec<u32> = pids.iter().map(|p| papers[p.index()].citations).collect();
            cites.sort_unstable_by(|a, b| b.cmp(a));
            h_index[i] = cites
                .iter()
                .enumerate()
                .take_while(|(rank, &c)| c as usize > *rank)
                .count() as u32;
        }
        let mut reviews_by_scholar = vec![Vec::new(); n];
        for (ri, r) in reviews.iter().enumerate() {
            reviews_by_scholar[r.reviewer.index()].push(ri);
        }
        Self {
            ontology,
            current_year,
            scholars,
            papers,
            venues,
            institutions,
            reviews,
            papers_by_author,
            coauthors,
            citations,
            h_index,
            reviews_by_scholar,
            pubs_by_scholar_venue,
        }
    }

    /// All scholars.
    pub fn scholars(&self) -> &[Scholar] {
        &self.scholars
    }

    /// All papers.
    pub fn papers(&self) -> &[Paper] {
        &self.papers
    }

    /// All venues.
    pub fn venues(&self) -> &[Venue] {
        &self.venues
    }

    /// All institutions.
    pub fn institutions(&self) -> &[Institution] {
        &self.institutions
    }

    /// All review records.
    pub fn reviews(&self) -> &[ReviewRecord] {
        &self.reviews
    }

    /// Scholar by id.
    pub fn scholar(&self, id: ScholarId) -> &Scholar {
        &self.scholars[id.index()]
    }

    /// Paper by id.
    pub fn paper(&self, id: PaperId) -> &Paper {
        &self.papers[id.index()]
    }

    /// Venue by id.
    pub fn venue(&self, id: VenueId) -> &Venue {
        &self.venues[id.index()]
    }

    /// Institution by id.
    pub fn institution(&self, id: InstitutionId) -> &Institution {
        &self.institutions[id.index()]
    }

    /// Papers authored by `s`, in generation (≈ chronological) order.
    pub fn papers_of(&self, s: ScholarId) -> &[PaperId] {
        &self.papers_by_author[s.index()]
    }

    /// Distinct co-authors of `s` (ground-truth COI edges).
    pub fn coauthors_of(&self, s: ScholarId) -> &[ScholarId] {
        &self.coauthors[s.index()]
    }

    /// Total citations across the papers of `s`.
    pub fn citations_of(&self, s: ScholarId) -> u64 {
        self.citations[s.index()]
    }

    /// h-index of `s`.
    pub fn h_index_of(&self, s: ScholarId) -> u32 {
        self.h_index[s.index()]
    }

    /// Review records of `s`.
    pub fn reviews_of(&self, s: ScholarId) -> impl Iterator<Item = &ReviewRecord> {
        self.reviews_by_scholar[s.index()]
            .iter()
            .map(move |&i| &self.reviews[i])
    }

    /// Number of reviews `s` performed for `venue`.
    pub fn reviews_for_venue(&self, s: ScholarId, venue: VenueId) -> u32 {
        self.reviews_of(s).filter(|r| r.venue == venue).count() as u32
    }

    /// Number of papers `s` published in `venue`.
    pub fn pubs_in_venue(&self, s: ScholarId, venue: VenueId) -> u32 {
        self.pubs_by_scholar_venue
            .get(&(s, venue))
            .copied()
            .unwrap_or(0)
    }

    /// Most recent year `s` published on `topic` (exact topic match),
    /// ground truth for the recency ranking component.
    pub fn last_active_on(&self, s: ScholarId, topic: TopicId) -> Option<u32> {
        self.papers_of(s)
            .iter()
            .map(|&p| self.paper(p))
            .filter(|p| p.topics.contains(&topic))
            .map(|p| p.year)
            .max()
    }

    /// True when `a` and `b` ever co-authored (ground-truth COI edge).
    pub fn ever_coauthored(&self, a: ScholarId, b: ScholarId) -> bool {
        self.coauthors[a.index()].contains(&b)
    }

    /// True when `a` and `b` were ever affiliated with the same
    /// institution during overlapping years (ground-truth COI edge).
    pub fn shared_affiliation(&self, a: ScholarId, b: ScholarId) -> bool {
        let sa = &self.scholars[a.index()].affiliations;
        let sb = &self.scholars[b.index()].affiliations;
        sa.iter().any(|x| {
            sb.iter()
                .any(|y| x.institution == y.institution && x.overlaps(y))
        })
    }

    /// Summary statistics used by experiment reports.
    pub fn stats(&self) -> WorldStats {
        let mut name_counts: HashMap<String, u32> = HashMap::new();
        for s in &self.scholars {
            *name_counts.entry(s.full_name()).or_insert(0) += 1;
        }
        let colliding_scholars = name_counts
            .values()
            .filter(|&&c| c > 1)
            .map(|&c| c as usize)
            .sum();
        WorldStats {
            scholars: self.scholars.len(),
            papers: self.papers.len(),
            venues: self.venues.len(),
            institutions: self.institutions.len(),
            reviews: self.reviews.len(),
            colliding_scholars,
            mean_papers_per_scholar: if self.scholars.is_empty() {
                0.0
            } else {
                self.papers_by_author.iter().map(Vec::len).sum::<usize>() as f64
                    / self.scholars.len() as f64
            },
        }
    }
}

/// Aggregate statistics about a generated world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldStats {
    /// Number of scholars.
    pub scholars: usize,
    /// Number of papers.
    pub papers: usize,
    /// Number of venues.
    pub venues: usize,
    /// Number of institutions.
    pub institutions: usize,
    /// Number of review records.
    pub reviews: usize,
    /// Number of scholars whose full name is shared with at least one
    /// other scholar.
    pub colliding_scholars: usize,
    /// Mean authored papers per scholar.
    pub mean_papers_per_scholar: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AffiliationSpan, VenueKind};
    use minaret_ontology::OntologyBuilder;

    fn tiny_world() -> World {
        let mut b = OntologyBuilder::new();
        let t0 = b.add_topic("cs", &[]).unwrap();
        let t1 = b.add_topic("db", &[]).unwrap();
        b.add_super_topic(t0, t1).unwrap();
        let ontology = b.build();
        let inst = vec![
            Institution {
                id: InstitutionId(0),
                name: "U0".into(),
                country: "X".into(),
            },
            Institution {
                id: InstitutionId(1),
                name: "U1".into(),
                country: "Y".into(),
            },
        ];
        let scholars = vec![
            Scholar {
                id: ScholarId(0),
                given_name: "A".into(),
                family_name: "One".into(),
                affiliations: vec![AffiliationSpan {
                    institution: InstitutionId(0),
                    from_year: 2000,
                    to_year: 2018,
                }],
                interests: vec![t1],
                active_since: 2000,
            },
            Scholar {
                id: ScholarId(1),
                given_name: "B".into(),
                family_name: "Two".into(),
                affiliations: vec![AffiliationSpan {
                    institution: InstitutionId(0),
                    from_year: 2010,
                    to_year: 2018,
                }],
                interests: vec![t1],
                active_since: 2010,
            },
            Scholar {
                id: ScholarId(2),
                given_name: "C".into(),
                family_name: "Three".into(),
                affiliations: vec![AffiliationSpan {
                    institution: InstitutionId(1),
                    from_year: 2000,
                    to_year: 2018,
                }],
                interests: vec![t0],
                active_since: 2000,
            },
        ];
        let venues = vec![Venue {
            id: VenueId(0),
            name: "J0".into(),
            kind: VenueKind::Journal,
            topics: vec![t1],
        }];
        let papers = vec![
            Paper {
                id: PaperId(0),
                title: "p0".into(),
                year: 2015,
                venue: VenueId(0),
                authors: vec![ScholarId(0), ScholarId(1)],
                topics: vec![t1],
                citations: 10,
            },
            Paper {
                id: PaperId(1),
                title: "p1".into(),
                year: 2017,
                venue: VenueId(0),
                authors: vec![ScholarId(0)],
                topics: vec![t1],
                citations: 1,
            },
        ];
        let reviews = vec![ReviewRecord {
            reviewer: ScholarId(2),
            venue: VenueId(0),
            year: 2016,
            turnaround_days: 30,
            quality: 4,
        }];
        World::assemble(ontology, 2018, scholars, papers, venues, inst, reviews)
    }

    #[test]
    fn derived_tables_are_correct() {
        let w = tiny_world();
        assert_eq!(w.papers_of(ScholarId(0)).len(), 2);
        assert_eq!(w.papers_of(ScholarId(2)).len(), 0);
        assert_eq!(w.citations_of(ScholarId(0)), 11);
        assert_eq!(w.citations_of(ScholarId(1)), 10);
        // h-index: citations [10, 1] -> h = 1? rank0: 10>0 yes; rank1: 1>1 no => 1.
        assert_eq!(w.h_index_of(ScholarId(0)), 1);
        assert_eq!(w.reviews_for_venue(ScholarId(2), VenueId(0)), 1);
        assert_eq!(w.pubs_in_venue(ScholarId(0), VenueId(0)), 2);
    }

    #[test]
    fn coauthorship_and_affiliation_coi() {
        let w = tiny_world();
        assert!(w.ever_coauthored(ScholarId(0), ScholarId(1)));
        assert!(!w.ever_coauthored(ScholarId(0), ScholarId(2)));
        assert!(w.shared_affiliation(ScholarId(0), ScholarId(1)));
        assert!(!w.shared_affiliation(ScholarId(0), ScholarId(2)));
    }

    #[test]
    fn recency_ground_truth() {
        let w = tiny_world();
        let db = w.ontology.resolve("db").unwrap();
        assert_eq!(w.last_active_on(ScholarId(0), db), Some(2017));
        assert_eq!(w.last_active_on(ScholarId(2), db), None);
    }

    #[test]
    fn stats_summarize() {
        let w = tiny_world();
        let s = w.stats();
        assert_eq!(s.scholars, 3);
        assert_eq!(s.papers, 2);
        assert_eq!(s.colliding_scholars, 0);
        assert!((s.mean_papers_per_scholar - 1.0).abs() < 1e-9);
    }

    #[test]
    fn h_index_definition_matches_textbook() {
        // Citations [5,4,4,1]: h = 3 (three papers with >= 3 citations).
        let mut cites = [5u32, 4, 4, 1];
        cites.sort_unstable_by(|a, b| b.cmp(a));
        let h = cites
            .iter()
            .enumerate()
            .take_while(|(rank, &c)| c as usize > *rank)
            .count();
        assert_eq!(h, 3);
    }
}
