//! Conference-scale batch assignment — the RevASIDE-style workload on
//! top of the MINARET pipeline.
//!
//! MINARET ranks reviewers for *one* manuscript; a venue assigns a
//! shared reviewer pool across a *whole submission batch* under
//! capacity, load, and COI constraints. This crate turns N independent
//! recommendations into one optimized workload:
//!
//! 1. **Batched extraction** — [`Minaret::extract_batch`] issues a
//!    single interest fan-out over the union of every manuscript's
//!    expanded labels, so the entire batch costs ~one policy-governed
//!    call per source (the PR 3/4 machinery).
//! 2. **Score matrix** — each paper's slice of the shared pool runs
//!    through the existing COI/threshold/expertise filter and the
//!    six-component ranking score, in parallel across papers via the
//!    order-preserving `chunked_map`.
//! 3. **Solve** — greedy seeding (papers in order take their best
//!    available reviewers) followed by min-cost-flow refinement
//!    (successive shortest augmenting paths on an in-crate network,
//!    [`flow`]): source → paper (capacity `reviewers_per_paper`) →
//!    reviewer (capacity 1 per pair, cost −score) → sink (capacity
//!    `max_load`). Max-flow short of `papers × reviewers_per_paper`
//!    is an explicit [`AssignError::Infeasible`], never a silent
//!    partial assignment. The refined solution never scores below the
//!    greedy seed — if integer-cost rounding ever ties the two, the
//!    greedy pairing is kept.
//!
//! Quality is reported per batch: mean assigned-pair relevance, the
//! load Gini coefficient across assigned reviewers, and (when a
//! synthetic [`World`] ground truth is on hand) coverage@k via
//! [`coverage_against_world`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;

use minaret_core::filter::filter_candidate;
use minaret_core::par::chunked_map;
use minaret_core::rank::score_candidate;
use minaret_core::{ManuscriptDetails, Minaret, MinaretError, PaperCandidate};
use minaret_synth::{ground_truth_relevance_all, ScholarId, SubmissionSpec, World};
use minaret_telemetry::Telemetry;

mod flow;

use flow::FlowNetwork;

/// Fixed-point scale for flow-network edge costs: scores in `[0, 1]`
/// become integer costs with ~9 significant digits, far below any
/// meaningful score difference.
const COST_SCALE: f64 = 1e9;

/// What the editor asks of a batch: how many reviews each paper needs,
/// how many papers one reviewer may carry, and (optionally) a COI
/// policy overriding the framework's configured one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignmentSpec {
    /// Reviewers required per paper (`k`); every paper gets exactly
    /// this many or the batch fails as infeasible.
    pub reviewers_per_paper: usize,
    /// Maximum papers assigned to one reviewer.
    pub max_load: usize,
    /// Per-paper candidate cap: only this paper's top candidates by
    /// phase-1 keyword relevance enter the (expensive) filter/rank
    /// phases and the flow network. `0` disables the cap. The default
    /// ([`DEFAULT_CANDIDATE_CAP`]) keeps a conference-scale batch —
    /// tens of papers over a 10^4-scholar pool — from scoring hundreds
    /// of thousands of hopeless pairs while leaving far more slack than
    /// any realistic `reviewers_per_paper × max_load` demand.
    pub max_candidates_per_paper: usize,
    /// COI policy for eligibility; `None` keeps the framework's
    /// configured policy.
    pub coi: Option<minaret_core::CoiConfig>,
}

/// Default per-paper candidate cap (see
/// [`AssignmentSpec::max_candidates_per_paper`]).
pub const DEFAULT_CANDIDATE_CAP: usize = 400;

impl AssignmentSpec {
    /// A spec with the framework's configured COI policy and the
    /// default candidate cap.
    pub fn new(reviewers_per_paper: usize, max_load: usize) -> Self {
        AssignmentSpec {
            reviewers_per_paper,
            max_load,
            max_candidates_per_paper: DEFAULT_CANDIDATE_CAP,
            coi: None,
        }
    }

    /// Overrides the COI policy for this batch.
    pub fn with_coi(mut self, coi: minaret_core::CoiConfig) -> Self {
        self.coi = Some(coi);
        self
    }

    fn validate(&self) -> Result<(), AssignError> {
        if self.reviewers_per_paper == 0 {
            return Err(AssignError::InvalidSpec(
                "reviewers_per_paper must be at least 1".into(),
            ));
        }
        if self.max_load == 0 {
            return Err(AssignError::InvalidSpec(
                "max_load must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Why a batch assignment failed.
#[derive(Debug)]
pub enum AssignError {
    /// The assignment spec itself is unusable.
    InvalidSpec(String),
    /// Extraction failed (invalid manuscript, too few live sources, or
    /// an empty candidate pool).
    Pipeline(MinaretError),
    /// No assignment satisfying the constraints exists: the named paper
    /// (0-based batch index) can receive only `assigned` of the
    /// `required` reviewers even with every load rebalanced.
    Infeasible {
        /// 0-based index of the first under-served paper.
        paper: usize,
        /// Its manuscript title.
        title: String,
        /// Reviewers the optimal flow could give it.
        assigned: usize,
        /// Reviewers the spec demands.
        required: usize,
    },
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignError::InvalidSpec(msg) => write!(f, "invalid assignment spec: {msg}"),
            AssignError::Pipeline(e) => write!(f, "extraction failed: {e}"),
            AssignError::Infeasible {
                paper,
                title,
                assigned,
                required,
            } => write!(
                f,
                "infeasible batch: paper #{paper} ({title:?}) can receive only \
                 {assigned} of {required} required reviewers"
            ),
        }
    }
}

impl std::error::Error for AssignError {}

impl From<MinaretError> for AssignError {
    fn from(e: MinaretError) -> Self {
        AssignError::Pipeline(e)
    }
}

/// One reviewer assigned to one paper.
#[derive(Debug, Clone)]
pub struct AssignedReviewer {
    /// Index into the shared candidate pool.
    pub pool_index: usize,
    /// Display name.
    pub name: String,
    /// Current affiliation, when known.
    pub affiliation: Option<String>,
    /// The pair's relevance score (the pipeline's fused total).
    pub score: f64,
    /// Ground-truth identity, when the sources agree on one (synthetic
    /// worlds only; drives coverage@k).
    pub truth: Option<ScholarId>,
}

/// One paper's assigned reviewer set.
#[derive(Debug, Clone)]
pub struct PaperAssignment {
    /// The manuscript title.
    pub title: String,
    /// Assigned reviewers, best score first.
    pub reviewers: Vec<AssignedReviewer>,
}

/// One reviewer's total load across the batch.
#[derive(Debug, Clone)]
pub struct ReviewerLoad {
    /// Index into the shared candidate pool.
    pub pool_index: usize,
    /// Display name.
    pub name: String,
    /// Papers assigned.
    pub load: usize,
}

/// Batch-level quality metrics.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuality {
    /// Mean relevance score over all assigned (paper, reviewer) pairs.
    pub mean_relevance: f64,
    /// Gini coefficient of assigned reviewers' loads (0 = perfectly
    /// balanced).
    pub load_gini: f64,
    /// Coverage@k against synthetic ground truth, when a [`World`] was
    /// consulted via [`coverage_against_world`].
    pub coverage_at_k: Option<f64>,
}

/// A solved batch assignment.
#[derive(Debug, Clone)]
pub struct BatchAssignment {
    /// Per-paper assignments, index-aligned with the input batch.
    pub papers: Vec<PaperAssignment>,
    /// Loads of every reviewer who received at least one paper,
    /// heaviest first.
    pub loads: Vec<ReviewerLoad>,
    /// Size of the shared candidate pool the batch drew from.
    pub pool_size: usize,
    /// Number of eligible (paper, reviewer) pairs in the score matrix.
    pub eligible_pairs: usize,
    /// Total score of the greedy seed (its pair count can fall short of
    /// the demand; the flow refinement's cannot).
    pub greedy_total: f64,
    /// Total score of the final assignment; never below `greedy_total`
    /// when the greedy seed was itself complete.
    pub total_score: f64,
    /// Augmenting paths the flow refinement used.
    pub augmentations: u64,
    /// Batch quality metrics.
    pub quality: BatchQuality,
}

impl BatchAssignment {
    /// How much the flow refinement improved on the greedy seed.
    pub fn refinement_improvement(&self) -> f64 {
        (self.total_score - self.greedy_total).max(0.0)
    }

    /// Renders the batch as a plain-text table: one row per assigned
    /// pair, then the load summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<4} {:<40} {:<28} {:>7}\n",
            "#", "Paper", "Reviewer", "score"
        ));
        for (i, paper) in self.papers.iter().enumerate() {
            for r in &paper.reviewers {
                out.push_str(&format!(
                    "{:<4} {:<40} {:<28} {:>7.4}\n",
                    i + 1,
                    clip(&paper.title, 40),
                    clip(&r.name, 28),
                    r.score,
                ));
            }
        }
        out.push_str(&format!(
            "\n{} papers, {} reviewers used (pool {}), total score {:.4} \
             (greedy {:.4}, +{:.4} via {} augmentations)\n",
            self.papers.len(),
            self.loads.len(),
            self.pool_size,
            self.total_score,
            self.greedy_total,
            self.refinement_improvement(),
            self.augmentations,
        ));
        out.push_str(&format!(
            "mean relevance {:.4}, load gini {:.4}{}\n",
            self.quality.mean_relevance,
            self.quality.load_gini,
            match self.quality.coverage_at_k {
                Some(c) => format!(", coverage@k {c:.4}"),
                None => String::new(),
            }
        ));
        out
    }
}

fn clip(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// The batch-assignment solver: a [`Minaret`] pipeline plus telemetry.
pub struct Assigner {
    minaret: Minaret,
    telemetry: Telemetry,
}

impl Assigner {
    /// Wraps a configured pipeline. The pipeline's editor config drives
    /// thresholds, expertise constraints, ranking weights, and (unless
    /// the spec overrides it) the COI policy.
    pub fn new(minaret: Minaret) -> Self {
        Assigner {
            minaret,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Reports `minaret_assign_*` metrics and per-phase solver spans.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn count(&self, result: &str) {
        self.telemetry
            .counter("minaret_assign_total", &[("result", result)])
            .inc();
    }

    /// Solves the batch: one extraction fan-out, per-paper score rows,
    /// greedy seed, flow refinement. Returns exactly
    /// `spec.reviewers_per_paper` reviewers for every paper or an
    /// explicit error.
    pub fn assign(
        &self,
        manuscripts: &[ManuscriptDetails],
        spec: &AssignmentSpec,
    ) -> Result<BatchAssignment, AssignError> {
        let trace = self.telemetry.trace("assign");
        if let Err(e) = spec.validate() {
            self.count("invalid_spec");
            return Err(e);
        }
        self.telemetry
            .histogram("minaret_assign_batch_size", &[])
            .observe(manuscripts.len() as u64);
        let k = spec.reviewers_per_paper;

        // ---- Extraction: one fan-out for the whole batch --------------
        let extraction = {
            let _span = trace.span("extract");
            self.minaret.extract_batch(manuscripts)
        };
        let ext = match extraction {
            Ok(ext) => ext,
            Err(e) => {
                self.count(match &e {
                    MinaretError::InvalidManuscript(_) => "invalid",
                    MinaretError::SourcesUnavailable { .. } => "sources_unavailable",
                    MinaretError::NoCandidates => "no_candidates",
                    _ => "error",
                });
                return Err(e.into());
            }
        };

        // ---- Score matrix: filter + rank each paper's pool slice ------
        let config = {
            let mut c = self.minaret.config().clone();
            if let Some(coi) = &spec.coi {
                c.coi = *coi;
            }
            c
        };
        let rows: Vec<Vec<(usize, f64)>> = {
            let _span = trace.span("score");
            let indices: Vec<usize> = (0..manuscripts.len()).collect();
            chunked_map(&indices, self.minaret.parallelism(), |&i| {
                let paper = &ext.papers[i];
                // Cap each paper's pool slice by phase-1 keyword
                // relevance before paying for filter + rank. The cut is
                // deterministic: score descending, pool index ascending.
                let mut matches: Vec<&PaperCandidate> = paper.matches.iter().collect();
                let cap = spec.max_candidates_per_paper;
                if cap > 0 && matches.len() > cap {
                    matches.sort_by(|a, b| {
                        b.keyword_score
                            .partial_cmp(&a.keyword_score)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.pool_index.cmp(&b.pool_index))
                    });
                    matches.truncate(cap);
                    matches.sort_by_key(|c| c.pool_index);
                }
                let mut row: Vec<(usize, f64)> = Vec::new();
                for cand in matches {
                    let merged = &ext.pool[cand.pool_index];
                    if !filter_candidate(merged, cand.keyword_score, &paper.author_records, &config)
                        .kept()
                    {
                        continue;
                    }
                    let breakdown = score_candidate(
                        merged,
                        &paper.expansion_sets,
                        &manuscripts[i].target_venue,
                        &config,
                    );
                    row.push((cand.pool_index, breakdown.total(&config.weights)));
                }
                row
            })
        };
        let eligible_pairs: usize = rows.iter().map(Vec::len).sum();

        // ---- Greedy seed ----------------------------------------------
        let greedy_pairs: Vec<Vec<(usize, f64)>> = {
            let _span = trace.span("greedy");
            let mut loads: HashMap<usize, usize> = HashMap::new();
            rows.iter()
                .map(|row| {
                    let mut order: Vec<&(usize, f64)> = row.iter().collect();
                    order.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| a.0.cmp(&b.0))
                    });
                    let mut chosen = Vec::new();
                    for &&(r, s) in &order {
                        if chosen.len() == k {
                            break;
                        }
                        let load = loads.entry(r).or_insert(0);
                        if *load < spec.max_load {
                            *load += 1;
                            chosen.push((r, s));
                        }
                    }
                    chosen
                })
                .collect()
        };
        let greedy_complete = greedy_pairs.iter().all(|c| c.len() == k);
        let greedy_total: f64 = greedy_pairs.iter().flatten().map(|&(_, s)| s).sum();

        // ---- Min-cost-flow refinement ---------------------------------
        let (final_pairs, total_score, augmentations) = {
            let _span = trace.span("flow");
            // Compact node ids: only reviewers appearing in some row.
            let mut reviewer_node: HashMap<usize, usize> = HashMap::new();
            let mut reviewers: Vec<usize> = Vec::new();
            for row in &rows {
                for &(r, _) in row {
                    reviewer_node.entry(r).or_insert_with(|| {
                        reviewers.push(r);
                        reviewers.len() - 1
                    });
                }
            }
            let p = manuscripts.len();
            let source = 0;
            let paper_base = 1;
            let reviewer_base = paper_base + p;
            let sink = reviewer_base + reviewers.len();
            let mut net = FlowNetwork::new(sink + 1);
            let mut paper_edges = Vec::with_capacity(p);
            for i in 0..p {
                paper_edges.push(net.add_edge(source, paper_base + i, k as i64, 0));
            }
            let mut pair_edges: Vec<Vec<(usize, usize, f64)>> = Vec::with_capacity(p);
            for (i, row) in rows.iter().enumerate() {
                let mut edges = Vec::with_capacity(row.len());
                for &(r, s) in row {
                    let cost = -((s * COST_SCALE).round() as i64);
                    let id =
                        net.add_edge(paper_base + i, reviewer_base + reviewer_node[&r], 1, cost);
                    edges.push((id, r, s));
                }
                pair_edges.push(edges);
            }
            for node in 0..reviewers.len() {
                net.add_edge(reviewer_base + node, sink, spec.max_load as i64, 0);
            }
            let outcome = net.min_cost_max_flow(source, sink);
            self.telemetry
                .counter("minaret_assign_flow_augmentations_total", &[])
                .inc_by(outcome.augmentations);
            if outcome.flow < (p * k) as i64 {
                let (paper, assigned) = paper_edges
                    .iter()
                    .enumerate()
                    .find(|(_, &e)| net.flow_on(e) < k as i64)
                    .map(|(i, &e)| (i, net.flow_on(e) as usize))
                    .unwrap_or((0, 0));
                self.count("infeasible");
                return Err(AssignError::Infeasible {
                    paper,
                    title: manuscripts[paper].title.clone(),
                    assigned,
                    required: k,
                });
            }
            let flow_pairs: Vec<Vec<(usize, f64)>> = pair_edges
                .iter()
                .map(|edges| {
                    edges
                        .iter()
                        .filter(|&&(id, _, _)| net.flow_on(id) > 0)
                        .map(|&(_, r, s)| (r, s))
                        .collect()
                })
                .collect();
            let flow_total: f64 = flow_pairs.iter().flatten().map(|&(_, s)| s).sum();
            // The flow optimum can only tie-or-beat a complete greedy
            // seed in scaled-integer cost; if f64 rounding ever puts it
            // a hair below, keep the seed so "refined ≥ greedy" holds
            // exactly.
            if greedy_complete && greedy_total > flow_total {
                (greedy_pairs, greedy_total, outcome.augmentations)
            } else {
                (flow_pairs, flow_total, outcome.augmentations)
            }
        };
        let improvement = (total_score - greedy_total).max(0.0);
        self.telemetry
            .histogram("minaret_assign_refinement_improvement_milli", &[])
            .observe((improvement * 1000.0).round() as u64);

        // ---- Assemble the report --------------------------------------
        let mut loads: HashMap<usize, usize> = HashMap::new();
        let papers: Vec<PaperAssignment> = manuscripts
            .iter()
            .zip(&final_pairs)
            .map(|(m, pairs)| {
                let mut reviewers: Vec<AssignedReviewer> = pairs
                    .iter()
                    .map(|&(r, s)| {
                        *loads.entry(r).or_insert(0) += 1;
                        let cand = &ext.pool[r];
                        AssignedReviewer {
                            pool_index: r,
                            name: cand.display_name.clone(),
                            affiliation: cand.affiliation.clone(),
                            score: s,
                            truth: cand.dominant_truth(),
                        }
                    })
                    .collect();
                reviewers.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.name.cmp(&b.name))
                });
                PaperAssignment {
                    title: m.title.clone(),
                    reviewers,
                }
            })
            .collect();
        let mut load_rows: Vec<ReviewerLoad> = loads
            .iter()
            .map(|(&r, &load)| ReviewerLoad {
                pool_index: r,
                name: ext.pool[r].display_name.clone(),
                load,
            })
            .collect();
        load_rows.sort_by(|a, b| {
            b.load
                .cmp(&a.load)
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| a.pool_index.cmp(&b.pool_index))
        });
        let pair_count: usize = final_pairs.iter().map(Vec::len).sum();
        let mean_relevance = if pair_count == 0 {
            0.0
        } else {
            total_score / pair_count as f64
        };
        let load_values: Vec<f64> = load_rows.iter().map(|l| l.load as f64).collect();
        let quality = BatchQuality {
            mean_relevance,
            load_gini: minaret_eval::metrics::gini(&load_values),
            coverage_at_k: None,
        };
        self.count("ok");
        Ok(BatchAssignment {
            papers,
            loads: load_rows,
            pool_size: ext.pool.len(),
            eligible_pairs,
            greedy_total,
            total_score,
            augmentations,
            quality,
        })
    }
}

/// Converts a synthetic submission into the pipeline's manuscript form
/// (names resolved through the world, venue by name).
pub fn manuscript_from_submission(world: &World, sub: &SubmissionSpec) -> ManuscriptDetails {
    ManuscriptDetails {
        title: sub.title.clone(),
        keywords: sub.keywords.clone(),
        authors: sub
            .authors
            .iter()
            .map(|&id| minaret_core::AuthorInput::named(world.scholar(id).full_name()))
            .collect(),
        target_venue: world.venue(sub.target_venue).name.clone(),
    }
}

/// Scores a solved batch against the synthetic world's ground truth:
/// for each paper, the ideal reviewer pool is every scholar with
/// positive [`ground_truth_relevance`], ranked, truncated to
/// `max(2k, 10)`; coverage@k is the fraction of the paper's `k`
/// assigned reviewers whose ground-truth identity lands in that pool.
/// Returns the mean over papers whose keywords resolve to ontology
/// topics, or `None` when no paper does.
pub fn coverage_against_world(
    world: &World,
    manuscripts: &[ManuscriptDetails],
    assignment: &BatchAssignment,
) -> Option<f64> {
    let mut name_to_id: HashMap<String, ScholarId> = HashMap::new();
    for s in world.scholars() {
        name_to_id.entry(s.full_name()).or_insert(s.id);
    }
    let fallback_venue = world.venues().first()?.id;
    let mut per_paper = Vec::new();
    for (m, paper) in manuscripts.iter().zip(&assignment.papers) {
        let topics: Vec<_> = m
            .keywords
            .iter()
            .filter_map(|kw| world.ontology.resolve(kw))
            .collect();
        if topics.is_empty() || paper.reviewers.is_empty() {
            continue;
        }
        let sub = SubmissionSpec {
            title: m.title.clone(),
            keywords: m.keywords.clone(),
            topics,
            authors: m
                .authors
                .iter()
                .filter_map(|a| name_to_id.get(&a.name).copied())
                .collect(),
            target_venue: world
                .venues()
                .iter()
                .find(|v| v.name == m.target_venue)
                .map(|v| v.id)
                .unwrap_or(fallback_venue),
        };
        let k = paper.reviewers.len();
        let relevance = ground_truth_relevance_all(world, &sub);
        let mut ranked: Vec<(f64, ScholarId)> = world
            .scholars()
            .iter()
            .map(|s| (relevance[s.id.index()], s.id))
            .filter(|&(rel, _)| rel > 0.0)
            .collect();
        ranked.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        ranked.truncate((2 * k).max(10));
        let ideal: std::collections::HashSet<ScholarId> =
            ranked.into_iter().map(|(_, id)| id).collect();
        let hits = paper
            .reviewers
            .iter()
            .filter(|r| r.truth.is_some_and(|t| ideal.contains(&t)))
            .count();
        per_paper.push(hits as f64 / k as f64);
    }
    if per_paper.is_empty() {
        None
    } else {
        Some(minaret_eval::metrics::mean(&per_paper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minaret_core::EditorConfig;
    use minaret_ontology::seed::curated_cs_ontology;
    use minaret_scholarly::{RegistryConfig, SimulatedSource, SourceRegistry, SourceSpec};
    use minaret_synth::{SubmissionGenerator, WorldConfig, WorldGenerator};
    use std::sync::Arc;

    fn world(scholars: usize) -> Arc<World> {
        Arc::new(
            WorldGenerator::new(WorldConfig {
                scholars,
                ..Default::default()
            })
            .generate(),
        )
    }

    fn assigner(world: &Arc<World>) -> Assigner {
        let mut reg = SourceRegistry::new(RegistryConfig::default());
        for spec in SourceSpec::all_defaults() {
            reg.register(Arc::new(SimulatedSource::new(spec, world.clone())));
        }
        Assigner::new(Minaret::new(
            Arc::new(reg),
            Arc::new(curated_cs_ontology()),
            EditorConfig::default(),
        ))
    }

    fn batch(world: &World, seed: u64, n: usize) -> Vec<ManuscriptDetails> {
        SubmissionGenerator::new(world, seed)
            .generate_many(n)
            .iter()
            .map(|sub| manuscript_from_submission(world, sub))
            .collect()
    }

    #[test]
    fn solves_a_small_batch_with_exact_k_and_load_caps() {
        let w = world(300);
        let a = assigner(&w);
        let manuscripts = batch(&w, 7, 4);
        let spec = AssignmentSpec::new(2, 3);
        let solved = a.assign(&manuscripts, &spec).expect("feasible batch");
        assert_eq!(solved.papers.len(), 4);
        for paper in &solved.papers {
            assert_eq!(paper.reviewers.len(), 2, "exactly k reviewers per paper");
            // No duplicate reviewer within one paper (unit pair capacity).
            let mut idx: Vec<usize> = paper.reviewers.iter().map(|r| r.pool_index).collect();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), 2);
        }
        for l in &solved.loads {
            assert!(l.load <= 3, "{} overloaded: {}", l.name, l.load);
        }
        assert!(solved.total_score >= solved.greedy_total - 1e-9);
        assert!(solved.quality.mean_relevance > 0.0);
        assert!((0.0..=1.0).contains(&solved.quality.load_gini));
    }

    #[test]
    fn impossible_load_is_an_explicit_infeasible_error() {
        let w = world(300);
        let a = assigner(&w);
        let manuscripts = batch(&w, 7, 4);
        // Demand more reviewers per paper than the pool can ever carry.
        let spec = AssignmentSpec::new(500, 1);
        match a.assign(&manuscripts, &spec) {
            Err(AssignError::Infeasible {
                assigned, required, ..
            }) => {
                assert!(assigned < required);
                assert_eq!(required, 500);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_spec_fields_are_rejected() {
        let w = world(300);
        let a = assigner(&w);
        let manuscripts = batch(&w, 7, 1);
        assert!(matches!(
            a.assign(&manuscripts, &AssignmentSpec::new(0, 3)),
            Err(AssignError::InvalidSpec(_))
        ));
        assert!(matches!(
            a.assign(&manuscripts, &AssignmentSpec::new(2, 0)),
            Err(AssignError::InvalidSpec(_))
        ));
    }

    #[test]
    fn empty_batch_is_rejected_via_pipeline_error() {
        let w = world(300);
        let a = assigner(&w);
        assert!(matches!(
            a.assign(&[], &AssignmentSpec::new(2, 3)),
            Err(AssignError::Pipeline(MinaretError::InvalidManuscript(_)))
        ));
    }

    #[test]
    fn authors_never_review_their_own_paper() {
        let w = world(300);
        let a = assigner(&w);
        let manuscripts = batch(&w, 11, 4);
        let solved = a.assign(&manuscripts, &AssignmentSpec::new(2, 4)).unwrap();
        for (m, paper) in manuscripts.iter().zip(&solved.papers) {
            for r in &paper.reviewers {
                for author in &m.authors {
                    assert_ne!(
                        minaret_ontology::normalize_label(&r.name),
                        minaret_ontology::normalize_label(&author.name),
                        "author assigned to own paper"
                    );
                }
            }
        }
    }

    #[test]
    fn telemetry_counts_results_and_phases() {
        let w = world(300);
        let telemetry = Telemetry::new();
        let a = assigner(&w).with_telemetry(telemetry.clone());
        let manuscripts = batch(&w, 7, 3);
        a.assign(&manuscripts, &AssignmentSpec::new(2, 3)).unwrap();
        let text = telemetry.encode_prometheus();
        assert!(
            text.contains("minaret_assign_total{result=\"ok\"} 1"),
            "{text}"
        );
        assert!(text.contains("minaret_assign_batch_size_count"), "{text}");
        assert!(
            text.contains("minaret_assign_refinement_improvement_milli_count"),
            "{text}"
        );
        let traces = telemetry.recent_traces();
        let assign_trace = traces.iter().find(|t| t.name == "assign").unwrap();
        let spans: Vec<&str> = assign_trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(spans, ["extract", "score", "greedy", "flow"]);
    }

    #[test]
    fn coverage_against_world_is_bounded() {
        let w = world(300);
        let a = assigner(&w);
        let manuscripts = batch(&w, 7, 3);
        let solved = a.assign(&manuscripts, &AssignmentSpec::new(2, 3)).unwrap();
        let cov = coverage_against_world(&w, &manuscripts, &solved)
            .expect("synthetic keywords resolve to topics");
        assert!((0.0..=1.0).contains(&cov), "coverage {cov} out of range");
    }

    #[test]
    fn flow_refinement_never_scores_below_greedy_across_specs() {
        let w = world(300);
        let a = assigner(&w);
        for (seed, n, k, load) in [(1u64, 3usize, 1usize, 2usize), (2, 4, 2, 2), (3, 5, 3, 4)] {
            let manuscripts = batch(&w, seed, n);
            if let Ok(solved) = a.assign(&manuscripts, &AssignmentSpec::new(k, load)) {
                assert!(
                    solved.total_score >= solved.greedy_total - 1e-9,
                    "seed {seed}: flow {} < greedy {}",
                    solved.total_score,
                    solved.greedy_total
                );
            }
        }
    }
}
