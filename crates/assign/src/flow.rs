//! An in-crate min-cost max-flow network solved by successive shortest
//! augmenting paths.
//!
//! The batch-assignment solver models papers and reviewers as a small
//! bipartite flow network (source → paper → reviewer → sink) and needs
//! nothing beyond integer capacities, integer (possibly negative) edge
//! costs, and a deterministic augmentation order — so the network lives
//! here rather than behind a dependency. Each augmentation finds the
//! cheapest residual source→sink path with SPFA (Bellman–Ford with a
//! FIFO queue, which tolerates the negative reduced costs the
//! paper→reviewer edges carry) and pushes the bottleneck capacity along
//! it. With unit paper→reviewer capacities every augmentation moves at
//! most `reviewers_per_paper` units, so the augmentation count is
//! bounded by the total demand and the run is exactly reproducible:
//! queue order, edge insertion order, and strict-improvement relaxation
//! make ties break identically on every run.

/// One directed edge plus its paired residual twin (stored at `id ^ 1`).
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
}

/// Outcome of a [`FlowNetwork::min_cost_max_flow`] run.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlowOutcome {
    /// Total units pushed from source to sink.
    pub flow: i64,
    /// Number of augmenting paths used.
    pub augmentations: u64,
}

/// A residual flow network over `n` nodes.
#[derive(Debug)]
pub(crate) struct FlowNetwork {
    edges: Vec<Edge>,
    /// Outgoing edge ids per node, in insertion order.
    adj: Vec<Vec<usize>>,
    /// Original capacity per edge id, to report flow after the run.
    original_cap: Vec<i64>,
}

impl FlowNetwork {
    /// An empty network over `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            original_cap: Vec::new(),
        }
    }

    /// Adds a directed edge `u → v` and its zero-capacity residual twin.
    /// Returns the forward edge's id.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> usize {
        let id = self.edges.len();
        self.edges.push(Edge { to: v, cap, cost });
        self.adj[u].push(id);
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
        });
        self.adj[v].push(id + 1);
        self.original_cap.push(cap);
        self.original_cap.push(0);
        id
    }

    /// Units currently flowing over forward edge `id` (the residual
    /// capacity accumulated on its twin).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.original_cap[id] - self.edges[id].cap
    }

    /// Cheapest residual `s → t` path via SPFA; returns the predecessor
    /// edge per node, or `None` when `t` is unreachable.
    fn shortest_path(&self, s: usize, t: usize) -> Option<Vec<usize>> {
        let n = self.adj.len();
        let mut dist = vec![i64::MAX; n];
        let mut prev_edge = vec![usize::MAX; n];
        let mut in_queue = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        dist[s] = 0;
        queue.push_back(s);
        in_queue[s] = true;
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            let du = dist[u];
            for &id in &self.adj[u] {
                let e = self.edges[id];
                // Strict improvement only: equal-cost alternatives keep
                // the first-discovered path, so ties are deterministic.
                if e.cap > 0 && du.saturating_add(e.cost) < dist[e.to] {
                    dist[e.to] = du + e.cost;
                    prev_edge[e.to] = id;
                    if !in_queue[e.to] {
                        queue.push_back(e.to);
                        in_queue[e.to] = true;
                    }
                }
            }
        }
        if dist[t] == i64::MAX {
            None
        } else {
            Some(prev_edge)
        }
    }

    /// Pushes flow along successive shortest (cheapest) paths until the
    /// sink is saturated or unreachable.
    pub fn min_cost_max_flow(&mut self, s: usize, t: usize) -> FlowOutcome {
        let mut outcome = FlowOutcome {
            flow: 0,
            augmentations: 0,
        };
        while let Some(prev_edge) = self.shortest_path(s, t) {
            // Bottleneck along the found path.
            let mut bottleneck = i64::MAX;
            let mut v = t;
            while v != s {
                let id = prev_edge[v];
                bottleneck = bottleneck.min(self.edges[id].cap);
                v = self.edges[id ^ 1].to;
            }
            let mut v = t;
            while v != s {
                let id = prev_edge[v];
                self.edges[id].cap -= bottleneck;
                self.edges[id ^ 1].cap += bottleneck;
                v = self.edges[id ^ 1].to;
            }
            outcome.flow += bottleneck;
            outcome.augmentations += 1;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_bipartite_max_flow() {
        // 2 papers × 2 reviewers, everyone compatible, k=1, load=1.
        // s=0, papers 1-2, reviewers 3-4, t=5.
        let mut net = FlowNetwork::new(6);
        for p in 1..=2 {
            net.add_edge(0, p, 1, 0);
        }
        let pr = [
            net.add_edge(1, 3, 1, -10),
            net.add_edge(1, 4, 1, -5),
            net.add_edge(2, 3, 1, -8),
            net.add_edge(2, 4, 1, -7),
        ];
        for r in 3..=4 {
            net.add_edge(r, 5, 1, 0);
        }
        let out = net.min_cost_max_flow(0, 5);
        assert_eq!(out.flow, 2);
        // Optimal: p1→r1 (−10) + p2→r2 (−7) = −17, beating the greedy
        // p1→r1 + p2→r3-blocked alternative considered pairwise.
        assert_eq!(net.flow_on(pr[0]), 1);
        assert_eq!(net.flow_on(pr[3]), 1);
        assert_eq!(net.flow_on(pr[1]), 0);
        assert_eq!(net.flow_on(pr[2]), 0);
    }

    #[test]
    fn flow_refines_past_a_greedy_trap() {
        // Greedy gives paper 1 reviewer A (its best), starving paper 2
        // whose only option is A. Flow reroutes paper 1 to B.
        // s=0, p1=1, p2=2, A=3, B=4, t=5.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 1, 0);
        net.add_edge(0, 2, 1, 0);
        let p1a = net.add_edge(1, 3, 1, -10);
        let p1b = net.add_edge(1, 4, 1, -9);
        let p2a = net.add_edge(2, 3, 1, -10);
        net.add_edge(3, 5, 1, 0);
        net.add_edge(4, 5, 1, 0);
        let out = net.min_cost_max_flow(0, 5);
        assert_eq!(out.flow, 2, "both papers must be served");
        assert_eq!(net.flow_on(p1b), 1);
        assert_eq!(net.flow_on(p2a), 1);
        assert_eq!(net.flow_on(p1a), 0);
    }

    #[test]
    fn infeasible_demand_reports_partial_flow() {
        // One reviewer with load 1, two papers demanding one each.
        let mut net = FlowNetwork::new(5);
        let sp = [net.add_edge(0, 1, 1, 0), net.add_edge(0, 2, 1, 0)];
        net.add_edge(1, 3, 1, -1);
        net.add_edge(2, 3, 1, -1);
        net.add_edge(3, 4, 1, 0);
        let out = net.min_cost_max_flow(0, 4);
        assert_eq!(out.flow, 1);
        assert_eq!(net.flow_on(sp[0]) + net.flow_on(sp[1]), 1);
    }

    #[test]
    fn respects_reviewer_capacity() {
        // 3 papers, 1 reviewer with max_load 2.
        let mut net = FlowNetwork::new(6);
        for p in 1..=3 {
            net.add_edge(0, p, 1, 0);
            net.add_edge(p, 4, 1, -1);
        }
        let rt = net.add_edge(4, 5, 2, 0);
        let out = net.min_cost_max_flow(0, 5);
        assert_eq!(out.flow, 2);
        assert_eq!(net.flow_on(rt), 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut net = FlowNetwork::new(8);
            for p in 1..=3 {
                net.add_edge(0, p, 1, 0);
            }
            let mut ids = Vec::new();
            for p in 1..=3 {
                for r in 4..=6 {
                    // Symmetric costs create ties on purpose.
                    ids.push(net.add_edge(p, r, 1, -5));
                }
            }
            for r in 4..=6 {
                net.add_edge(r, 7, 1, 0);
            }
            (net, ids)
        };
        let (mut a, ids_a) = build();
        let (mut b, ids_b) = build();
        a.min_cost_max_flow(0, 7);
        b.min_cost_max_flow(0, 7);
        let flows_a: Vec<i64> = ids_a.iter().map(|&i| a.flow_on(i)).collect();
        let flows_b: Vec<i64> = ids_b.iter().map(|&i| b.flow_on(i)).collect();
        assert_eq!(flows_a, flows_b, "tied solutions must break identically");
    }
}
