//! Property-based tests over generated ontologies: the invariants the
//! similarity measure and expander must hold for *any* DAG, not just the
//! curated seed.

use minaret_ontology::gen::{GeneratorConfig, OntologyGenerator};
use minaret_ontology::{ExpansionConfig, KeywordExpander, TopicId};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        2usize..120,
        1usize..10,
        0.0f64..0.5,
        0.0f64..0.8,
        any::<u64>(),
    )
        .prop_map(
            |(topics, branching, multi_parent_rate, related_rate, seed)| GeneratorConfig {
                topics,
                branching,
                multi_parent_rate,
                related_rate,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn similarity_is_symmetric_bounded_and_reflexive(cfg in arb_config()) {
        let o = OntologyGenerator::new(cfg).generate();
        let n = o.len();
        // Sample a grid of pairs rather than all O(n^2).
        let step = (n / 12).max(1);
        for i in (0..n).step_by(step) {
            let a = TopicId::from_index(i);
            prop_assert_eq!(o.similarity(a, a), 1.0);
            for j in (0..n).step_by(step) {
                let b = TopicId::from_index(j);
                let sab = o.similarity(a, b);
                let sba = o.similarity(b, a);
                prop_assert!((sab - sba).abs() < 1e-12, "asymmetric: {} vs {}", sab, sba);
                prop_assert!((0.0..=1.0).contains(&sab));
            }
        }
    }

    #[test]
    fn generated_graphs_are_single_rooted_dags(cfg in arb_config()) {
        let o = OntologyGenerator::new(cfg).generate();
        let stats = o.stats();
        prop_assert_eq!(stats.roots, 1);
        prop_assert!(stats.max_depth >= 1);
        // Every topic's ancestors terminate at the root (acyclicity was
        // enforced at build; this checks reachability).
        let root = TopicId::from_index(0);
        for t in o.topics() {
            if t.id != root {
                prop_assert!(o.ancestors(t.id).contains(&root));
            }
        }
    }

    #[test]
    fn expansion_scores_sorted_and_bounded_on_any_ontology(
        cfg in arb_config(),
        seed_idx in 0usize..100,
        min_score in 0.0f64..1.0,
        max_hops in 0u32..4,
    ) {
        let o = OntologyGenerator::new(cfg).generate();
        let seed = TopicId::from_index(seed_idx % o.len());
        let expander = KeywordExpander::new(&o, ExpansionConfig {
            min_score,
            max_hops,
            max_results: 64,
            ..Default::default()
        });
        let out = expander.expand_topic(seed);
        prop_assert!(!out.is_empty(), "seed itself always present");
        prop_assert_eq!(out[0].topic, seed);
        prop_assert_eq!(out[0].score, 1.0);
        for w in out.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for e in &out {
            prop_assert!((0.0..=1.0).contains(&e.score));
            prop_assert!(e.hops <= max_hops);
            if e.topic != seed {
                prop_assert!(e.score >= min_score);
                // Reported score equals the true seed similarity.
                prop_assert!((e.score - o.similarity(seed, e.topic)).abs() < 1e-12);
            }
        }
        // No duplicates.
        let mut topics: Vec<_> = out.iter().map(|e| e.topic).collect();
        topics.sort();
        topics.dedup();
        prop_assert_eq!(topics.len(), out.len());
    }

    #[test]
    fn expanding_with_lower_floor_is_a_superset(cfg in arb_config(), seed_idx in 0usize..100) {
        let o = OntologyGenerator::new(cfg).generate();
        let seed = TopicId::from_index(seed_idx % o.len());
        let strict = KeywordExpander::new(&o, ExpansionConfig {
            min_score: 0.8,
            max_results: 1000,
            ..Default::default()
        }).expand_topic(seed);
        let loose = KeywordExpander::new(&o, ExpansionConfig {
            min_score: 0.4,
            max_results: 1000,
            ..Default::default()
        }).expand_topic(seed);
        let loose_topics: std::collections::HashSet<_> =
            loose.iter().map(|e| e.topic).collect();
        for e in &strict {
            prop_assert!(
                loose_topics.contains(&e.topic),
                "strict result {:?} missing from loose expansion",
                e.label
            );
        }
    }
}
