//! Loading ontologies from CSO-style CSV triple exports.
//!
//! The paper downloads the Computer Science Ontology from
//! `cso.kmi.open.ac.uk`, which ships as CSV triples:
//!
//! ```csv
//! "<.../topics/semantic_web>","<.../superTopicOf>","<.../topics/rdf>"
//! "<.../topics/rdf>","<.../relatedEquivalent>","<.../topics/sparql>"
//! "<.../topics/rdf>","<.../preferentialEquivalent>","<.../topics/rdf>"
//! ```
//!
//! [`parse_cso_csv`] accepts that shape (full IRIs or bare labels),
//! mapping `superTopicOf` to hierarchy edges, `relatedEquivalent` to
//! related edges, and `preferentialEquivalent` to aliases. Unknown
//! relations are counted and skipped, so newer CSO releases load without
//! code changes.

use std::collections::HashMap;

use crate::error::OntologyError;
use crate::graph::{Ontology, OntologyBuilder};
use crate::topic::TopicId;

/// What a CSV load did — for logging and sanity checks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Topics created.
    pub topics: usize,
    /// `superTopicOf` edges added.
    pub super_edges: usize,
    /// `relatedEquivalent` edges added.
    pub related_edges: usize,
    /// Alias (`preferentialEquivalent`) rows applied.
    pub aliases: usize,
    /// Rows skipped with their line numbers and reasons.
    pub skipped: Vec<(usize, String)>,
}

/// Parses a CSO-style CSV export into an ontology.
///
/// Rows are `subject,relation,object`, each field optionally quoted and
/// optionally a full IRI (the last path segment becomes the label, with
/// `_` read as a space). Edges that would create cycles or self-loops are
/// reported in [`LoadReport::skipped`] rather than failing the load —
/// real CSO exports contain a handful of both.
pub fn parse_cso_csv(input: &str) -> Result<(Ontology, LoadReport), OntologyError> {
    let mut builder = OntologyBuilder::new();
    let mut ids: HashMap<String, TopicId> = HashMap::new();
    let mut report = LoadReport::default();
    // Aliases are applied at the end: CSO lists them as rows, but the
    // builder wants them at topic creation. We instead register alias
    // labels as lookups on the canonical topic via a second pass using
    // related-equivalence of names (cheap trick: store them and re-add).
    let mut alias_rows: Vec<(String, String, usize)> = Vec::new();
    let mut edge_rows: Vec<(String, &'static str, String, usize)> = Vec::new();

    for (line_no, raw_line) in input.lines().enumerate() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_csv_row(line);
        if fields.len() != 3 {
            report.skipped.push((
                line_no + 1,
                format!("expected 3 fields, got {}", fields.len()),
            ));
            continue;
        }
        let subject = iri_label(&fields[0]);
        let relation = iri_label(&fields[1]);
        let object = iri_label(&fields[2]);
        if subject.is_empty() || object.is_empty() {
            report.skipped.push((line_no + 1, "empty endpoint".into()));
            continue;
        }
        match relation.as_str() {
            "supertopicof" | "super topic of" => {
                edge_rows.push((subject, "super", object, line_no + 1));
            }
            "relatedequivalent" | "related equivalent" => {
                edge_rows.push((subject, "related", object, line_no + 1));
            }
            "preferentialequivalent" | "preferential equivalent" => {
                alias_rows.push((subject, object, line_no + 1));
            }
            "contributesto" | "contributes to" => {
                // Present in CSO but not used by MINARET's expansion.
                report
                    .skipped
                    .push((line_no + 1, "relation contributesTo ignored".into()));
            }
            other => {
                report
                    .skipped
                    .push((line_no + 1, format!("unknown relation {other:?}")));
            }
        }
    }

    // Create all topics mentioned by any kept row.
    let ensure_topic =
        |label: &str, builder: &mut OntologyBuilder, ids: &mut HashMap<String, TopicId>| {
            if let Some(&id) = ids.get(label) {
                return Ok::<TopicId, OntologyError>(id);
            }
            let id = builder.add_topic(label, &[])?;
            ids.insert(label.to_string(), id);
            Ok(id)
        };
    for (a, _, b, line) in &edge_rows {
        for endpoint in [a, b] {
            if !ids.contains_key(endpoint) {
                match ensure_topic(endpoint, &mut builder, &mut ids) {
                    Ok(_) => report.topics += 1,
                    Err(e) => {
                        report.skipped.push((*line, e.to_string()));
                    }
                }
            }
        }
    }
    for (a, rel, b, line) in &edge_rows {
        let (Some(&ia), Some(&ib)) = (ids.get(a), ids.get(b)) else {
            continue;
        };
        let result = match *rel {
            "super" => builder.add_super_topic(ia, ib).map(|()| {
                report.super_edges += 1;
            }),
            _ => builder.add_related(ia, ib).map(|()| {
                report.related_edges += 1;
            }),
        };
        if let Err(e) = result {
            report.skipped.push((*line, e.to_string()));
        }
    }
    // Aliases: CSO's preferentialEquivalent maps a variant (subject) to
    // its canonical topic (object). The builder has no post-hoc alias
    // API, so variants become `related_equivalent` twins when both exist
    // as topics, and are recorded as applied aliases otherwise.
    for (variant, canonical, line) in &alias_rows {
        match (ids.get(variant), ids.get(canonical)) {
            (Some(&iv), Some(&ic)) if iv != ic => {
                if builder.add_related(iv, ic).is_ok() {
                    report.aliases += 1;
                }
            }
            (None, Some(&ic)) => {
                // Variant label not a topic of its own: create it as a
                // twin topic linked relatedEquivalent to the canonical.
                match builder.add_topic(variant, &[]) {
                    Ok(iv) => {
                        ids.insert(variant.clone(), iv);
                        report.topics += 1;
                        if builder.add_related(iv, ic).is_ok() {
                            report.aliases += 1;
                        }
                    }
                    Err(e) => report.skipped.push((*line, e.to_string())),
                }
            }
            _ => report
                .skipped
                .push((*line, "alias endpoints unresolved".into())),
        }
    }

    Ok((builder.build(), report))
}

/// Serializes an ontology back to the CSO-style CSV triple format that
/// [`parse_cso_csv`] reads.
///
/// Hierarchy edges become `superTopicOf` rows, related edges become
/// `relatedEquivalent` rows (emitted once per undirected pair), and
/// aliases become `preferentialEquivalent` rows. Labels are emitted bare
/// (no IRIs); fields are quoted. Round trip: re-importing the output
/// reproduces the same topic set and edges (aliases come back as
/// related-equivalent twin topics, which is how the importer models
/// them).
pub fn to_cso_csv(ontology: &Ontology) -> String {
    let mut out = String::new();
    let quote = |s: &str| format!("\"{}\"", s.replace('"', "\"\""));
    for topic in ontology.topics() {
        for &child in ontology.children(topic.id) {
            out.push_str(&format!(
                "{},{},{}\n",
                quote(&topic.normalized),
                quote("superTopicOf"),
                quote(&ontology.topic(child).expect("child exists").normalized)
            ));
        }
        for &rel in ontology.related(topic.id) {
            if topic.id < rel {
                out.push_str(&format!(
                    "{},{},{}\n",
                    quote(&topic.normalized),
                    quote("relatedEquivalent"),
                    quote(&ontology.topic(rel).expect("related exists").normalized)
                ));
            }
        }
        for alias in &topic.aliases {
            out.push_str(&format!(
                "{},{},{}\n",
                quote(alias),
                quote("preferentialEquivalent"),
                quote(&topic.normalized)
            ));
        }
    }
    out
}

/// Splits one CSV row, honouring double quotes (CSO quotes every field).
fn split_csv_row(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Extracts a human label from an IRI-or-label field:
/// `<https://cso.kmi.open.ac.uk/topics/semantic_web>` → `semantic web`.
fn iri_label(field: &str) -> String {
    let s = field.trim().trim_matches(|c| c == '<' || c == '>');
    let last = s.rsplit('/').next().unwrap_or(s);
    let last = last.rsplit('#').next().unwrap_or(last);
    crate::normalize::normalize_label(&last.replace('_', " "))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
"<https://cso.kmi.open.ac.uk/topics/computer_science>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/semantic_web>"
"<https://cso.kmi.open.ac.uk/topics/semantic_web>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/rdf>"
"<https://cso.kmi.open.ac.uk/topics/semantic_web>","<https://cso.kmi.open.ac.uk/schema/cso#superTopicOf>","<https://cso.kmi.open.ac.uk/topics/sparql>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<https://cso.kmi.open.ac.uk/schema/cso#relatedEquivalent>","<https://cso.kmi.open.ac.uk/topics/sparql>"
"<https://cso.kmi.open.ac.uk/topics/resource_description_framework>","<https://cso.kmi.open.ac.uk/schema/cso#preferentialEquivalent>","<https://cso.kmi.open.ac.uk/topics/rdf>"
"<https://cso.kmi.open.ac.uk/topics/rdf>","<https://cso.kmi.open.ac.uk/schema/cso#contributesTo>","<https://cso.kmi.open.ac.uk/topics/databases>"
"#;

    #[test]
    fn loads_cso_sample() {
        let (ontology, report) = parse_cso_csv(SAMPLE).unwrap();
        assert_eq!(report.super_edges, 3);
        assert_eq!(report.related_edges, 1);
        assert_eq!(report.aliases, 1);
        let rdf = ontology.resolve("rdf").unwrap();
        let sw = ontology.resolve("semantic web").unwrap();
        assert!(ontology.parents(rdf).contains(&sw));
        // The alias twin participates in similarity via relatedEquivalent.
        let alias = ontology.resolve("resource description framework").unwrap();
        assert!(ontology.similarity(alias, rdf) >= 0.9);
        // contributesTo skipped but reported.
        assert!(report
            .skipped
            .iter()
            .any(|(_, r)| r.contains("contributesTo")));
    }

    #[test]
    fn expansion_works_on_loaded_ontology() {
        use crate::expand::KeywordExpander;
        let (ontology, _) = parse_cso_csv(SAMPLE).unwrap();
        let expander = KeywordExpander::with_defaults(&ontology);
        let labels: Vec<String> = expander
            .expand("rdf")
            .unwrap()
            .into_iter()
            .map(|e| e.label)
            .collect();
        assert!(labels.iter().any(|l| l == "semantic web"));
        assert!(labels.iter().any(|l| l == "sparql"));
    }

    #[test]
    fn bare_labels_and_unquoted_fields_work() {
        let input =
            "computer science,superTopicOf,databases\ndatabases,relatedEquivalent,data mining\n";
        let (ontology, report) = parse_cso_csv(input).unwrap();
        assert_eq!(report.super_edges, 1);
        assert_eq!(report.related_edges, 1);
        assert!(ontology.resolve("data mining").is_some());
    }

    #[test]
    fn malformed_rows_are_skipped_not_fatal() {
        let input = "only,two\n\n# comment\na,superTopicOf,b\nb,superTopicOf,a\n";
        let (ontology, report) = parse_cso_csv(input).unwrap();
        // First row: wrong arity. Last row: would create a cycle.
        assert_eq!(report.skipped.len(), 2);
        assert_eq!(ontology.len(), 2);
        assert_eq!(report.super_edges, 1);
    }

    #[test]
    fn quoted_commas_and_escaped_quotes() {
        let row = r#""a, with comma","superTopicOf","say ""b""""#;
        let fields = split_csv_row(row);
        assert_eq!(fields[0], "a, with comma");
        assert_eq!(fields[2], "say \"b\"");
    }

    #[test]
    fn export_reimports_with_same_structure() {
        let (original, _) = parse_cso_csv(SAMPLE).unwrap();
        let csv = to_cso_csv(&original);
        let (reimported, report) = parse_cso_csv(&csv).unwrap();
        assert!(
            report.skipped.is_empty(),
            "round trip skipped rows: {report:?}"
        );
        let a = original.stats();
        let b = reimported.stats();
        assert_eq!(a.super_edges, b.super_edges);
        assert_eq!(a.related_edges, b.related_edges);
        // Every original label still resolves.
        for t in original.topics() {
            assert!(
                reimported.resolve(&t.normalized).is_some(),
                "lost topic {:?}",
                t.label
            );
        }
    }

    #[test]
    fn curated_ontology_survives_round_trip() {
        let original = crate::seed::curated_cs_ontology();
        let (reimported, report) = parse_cso_csv(&to_cso_csv(&original)).unwrap();
        assert!(report.skipped.is_empty());
        // Aliases become related twins, so topic count grows; but all
        // hierarchy edges survive and every label resolves.
        assert_eq!(original.stats().super_edges, reimported.stats().super_edges);
        for t in original.topics() {
            assert!(reimported.resolve(&t.normalized).is_some());
            for alias in &t.aliases {
                assert!(
                    reimported.resolve(alias).is_some(),
                    "alias {alias:?} lost in round trip"
                );
            }
        }
        // The paper's expansion example still works after a round trip.
        let expander = crate::expand::KeywordExpander::with_defaults(&reimported);
        let labels: Vec<String> = expander
            .expand("rdf")
            .unwrap()
            .into_iter()
            .map(|e| e.label)
            .collect();
        assert!(labels.iter().any(|l| l == "semantic web"));
    }

    #[test]
    fn unknown_relations_reported() {
        let input = "a,frenemyOf,b\n";
        let (_, report) = parse_cso_csv(input).unwrap();
        assert_eq!(report.skipped.len(), 1);
        assert!(report.skipped[0].1.contains("frenemyof"));
    }
}
