//! Topic-ontology substrate for the MINARET reviewer-recommendation framework.
//!
//! The paper relies on the Computer Science Ontology (CSO) to semantically
//! expand manuscript keywords: each expanded keyword carries a similarity
//! score in `[0, 1]` describing how related it is to the original keyword
//! (§2.1 of the paper, e.g. `"RDF"` expands to `"Semantic Web"`,
//! `"Linked Open Data"` and `"SPARQL"`).
//!
//! This crate provides:
//!
//! * [`Ontology`] — an immutable topic DAG with `super_topic_of` edges and
//!   undirected `related_equivalent` edges, built through
//!   [`OntologyBuilder`] which validates acyclicity and label uniqueness.
//! * [`Ontology::similarity`] — Wu–Palmer-style semantic similarity between
//!   any two topics, blended with a bonus for `related_equivalent` pairs.
//! * [`KeywordExpander`] — the expansion engine that turns a free-text
//!   keyword into a scored set of related topics.
//! * [`seed::curated_cs_ontology`] — a hand-curated computer-science
//!   ontology standing in for CSO (which cannot be downloaded here); it
//!   contains the paper's own worked example.
//! * [`gen::OntologyGenerator`] — a deterministic synthetic-ontology
//!   generator used by the scalability benchmarks.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod expand;
pub mod gen;
mod graph;
pub mod io;
mod normalize;
pub mod seed;
mod similarity;
mod topic;

pub use error::OntologyError;
pub use expand::{ExpandedKeyword, ExpansionConfig, KeywordExpander};
pub use graph::{Ontology, OntologyBuilder, OntologyStats, OntologyTables, TopicRow};
pub use normalize::{normalize_label, tokenize};
pub use topic::{Topic, TopicId};
