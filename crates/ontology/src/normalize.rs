//! Text normalization shared by topic lookup and keyword matching.
//!
//! Scholarly sources spell the same topic many ways (`"Semantic Web"`,
//! `"semantic-web"`, `" SEMANTIC  WEB "`). All lookups in this crate go
//! through [`normalize_label`] so that those variants collide.

/// Normalizes a topic label or keyword for lookup.
///
/// Lowercases, maps any run of non-alphanumeric characters to a single
/// space, and trims. The result is stable: normalizing twice is a no-op.
///
/// ```
/// use minaret_ontology::normalize_label;
/// assert_eq!(normalize_label("  Semantic--Web "), "semantic web");
/// assert_eq!(normalize_label("RDF"), "rdf");
/// ```
pub fn normalize_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lower in ch.to_lowercase() {
                out.push(lower);
            }
        } else {
            pending_space = true;
        }
    }
    out
}

/// Splits a string into normalized word tokens.
///
/// ```
/// use minaret_ontology::tokenize;
/// assert_eq!(tokenize("Linked-Open Data!"), vec!["linked", "open", "data"]);
/// ```
pub fn tokenize(s: &str) -> Vec<String> {
    normalize_label(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(|t| t.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn collapses_punctuation_and_case() {
        assert_eq!(normalize_label("Big   Data!!"), "big data");
        assert_eq!(normalize_label("machine_learning"), "machine learning");
        assert_eq!(normalize_label(""), "");
        assert_eq!(normalize_label("---"), "");
    }

    #[test]
    fn keeps_unicode_letters() {
        assert_eq!(normalize_label("Müller"), "müller");
    }

    #[test]
    fn tokenize_drops_empties() {
        assert_eq!(tokenize(" , "), Vec::<String>::new());
        assert_eq!(tokenize("a,b"), vec!["a", "b"]);
    }

    proptest! {
        #[test]
        fn normalization_is_idempotent(s in ".{0,64}") {
            let once = normalize_label(&s);
            let twice = normalize_label(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn normalized_output_has_no_double_spaces(s in ".{0,64}") {
            let n = normalize_label(&s);
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }

        #[test]
        fn tokens_join_to_normalized(s in ".{0,64}") {
            let n = normalize_label(&s);
            let joined = tokenize(&s).join(" ");
            prop_assert_eq!(n, joined);
        }
    }
}
