//! A hand-curated computer-science topic ontology.
//!
//! The paper uses the Computer Science Ontology (CSO) downloaded from
//! `cso.kmi.open.ac.uk`. That download is unavailable here, so this module
//! ships a curated ontology with the same *shape*: a DAG rooted at
//! "Computer Science" with `super_topic_of` edges and
//! `related_equivalent` edges between near-synonymous areas. It covers the
//! major CS fields and is deliberately dense around the paper's own worked
//! example (`"RDF"` → `"Semantic Web"`, `"Linked Open Data"`,
//! `"SPARQL"`).

use crate::graph::{Ontology, OntologyBuilder};

/// `(label, aliases, parent labels)` — parents must appear earlier in the
/// table so the builder can resolve them in one pass.
const TOPICS: &[(&str, &[&str], &[&str])] = &[
    ("Computer Science", &["cs", "computing"], &[]),
    // ---- depth 2: major areas -------------------------------------------
    (
        "Databases",
        &["data bases", "database systems", "dbms"],
        &["Computer Science"],
    ),
    ("Artificial Intelligence", &["ai"], &["Computer Science"]),
    (
        "Machine Learning",
        &["ml", "statistical learning"],
        &["Artificial Intelligence"],
    ),
    (
        "Data Mining",
        &["knowledge discovery", "kdd"],
        &["Computer Science"],
    ),
    ("Information Retrieval", &["ir"], &["Computer Science"]),
    (
        "Distributed Systems",
        &["distributed computing"],
        &["Computer Science"],
    ),
    (
        "Computer Networks",
        &["networking", "networks"],
        &["Computer Science"],
    ),
    (
        "Security and Privacy",
        &["computer security", "cybersecurity"],
        &["Computer Science"],
    ),
    ("Software Engineering", &["se"], &["Computer Science"]),
    ("Programming Languages", &["pl"], &["Computer Science"]),
    (
        "Theory of Computation",
        &["theoretical computer science"],
        &["Computer Science"],
    ),
    (
        "Human Computer Interaction",
        &["hci", "human-computer interaction"],
        &["Computer Science"],
    ),
    ("Computer Graphics", &["graphics"], &["Computer Science"]),
    ("Operating Systems", &["os"], &["Computer Science"]),
    (
        "Computer Architecture",
        &["hardware architecture"],
        &["Computer Science"],
    ),
    (
        "Bioinformatics",
        &["computational biology"],
        &["Computer Science"],
    ),
    (
        "Natural Language Processing",
        &["nlp", "computational linguistics"],
        &["Artificial Intelligence"],
    ),
    (
        "Computer Vision",
        &["cv", "machine vision"],
        &["Artificial Intelligence"],
    ),
    ("World Wide Web", &["web", "www"], &["Computer Science"]),
    (
        "Parallel Computing",
        &["parallel processing"],
        &["Computer Science"],
    ),
    ("Embedded Systems", &[], &["Computer Science"]),
    ("Robotics", &[], &["Artificial Intelligence"]),
    (
        "Scientometrics",
        &["bibliometrics", "science of science"],
        &["Computer Science"],
    ),
    (
        "Knowledge Representation",
        &["kr"],
        &["Artificial Intelligence"],
    ),
    // ---- databases subtree ---------------------------------------------
    ("Query Processing", &["query execution"], &["Databases"]),
    (
        "Query Optimization",
        &["query optimisation"],
        &["Query Processing"],
    ),
    (
        "Transaction Processing",
        &["transactions", "oltp"],
        &["Databases"],
    ),
    ("Concurrency Control", &[], &["Transaction Processing"]),
    (
        "Distributed Databases",
        &[],
        &["Databases", "Distributed Systems"],
    ),
    (
        "Data Integration",
        &["information integration"],
        &["Databases"],
    ),
    (
        "Data Warehousing",
        &["data warehouses", "olap"],
        &["Databases"],
    ),
    (
        "Data Cleaning",
        &["data cleansing", "data quality"],
        &["Data Integration"],
    ),
    (
        "Entity Resolution",
        &["record linkage", "deduplication"],
        &["Data Cleaning"],
    ),
    (
        "Schema Matching",
        &["schema mapping"],
        &["Data Integration"],
    ),
    (
        "Indexing",
        &["index structures", "access methods"],
        &["Databases"],
    ),
    (
        "Spatial Databases",
        &["spatial data management"],
        &["Databases"],
    ),
    ("Temporal Databases", &[], &["Databases"]),
    (
        "Graph Databases",
        &["graph data management"],
        &["Databases"],
    ),
    (
        "NoSQL",
        &["nosql databases", "non-relational databases"],
        &["Databases"],
    ),
    ("Key Value Stores", &["key-value stores"], &["NoSQL"]),
    ("Document Stores", &["document databases"], &["NoSQL"]),
    ("Column Stores", &["columnar storage"], &["Databases"]),
    (
        "In Memory Databases",
        &["main memory databases"],
        &["Databases"],
    ),
    (
        "Data Streams",
        &["stream processing", "streaming data"],
        &["Databases"],
    ),
    (
        "Complex Event Processing",
        &["cep", "event processing"],
        &["Data Streams"],
    ),
    (
        "Big Data",
        &["large-scale data", "big data analytics"],
        &["Databases", "Distributed Systems"],
    ),
    ("MapReduce", &["map-reduce"], &["Big Data"]),
    ("Data Lakes", &[], &["Big Data"]),
    ("Query Languages", &[], &["Databases"]),
    ("SQL", &["structured query language"], &["Query Languages"]),
    (
        "Relational Databases",
        &["relational model", "rdbms"],
        &["Databases"],
    ),
    (
        "XML",
        &["extensible markup language", "xml data"],
        &["Databases", "World Wide Web"],
    ),
    (
        "JSON Data Management",
        &["json"],
        &["Databases", "World Wide Web"],
    ),
    (
        "Provenance",
        &["data provenance", "lineage"],
        &["Databases"],
    ),
    (
        "Crowdsourcing",
        &["crowd computing", "human computation"],
        &["Databases", "World Wide Web"],
    ),
    ("Benchmarking", &["performance evaluation"], &["Databases"]),
    (
        "Database Tuning",
        &["self-tuning databases", "autonomic databases"],
        &["Databases"],
    ),
    (
        "Approximate Query Processing",
        &["aqp"],
        &["Query Processing"],
    ),
    (
        "Join Processing",
        &["join algorithms"],
        &["Query Processing"],
    ),
    (
        "Cardinality Estimation",
        &["selectivity estimation"],
        &["Query Optimization"],
    ),
    (
        "Storage Systems",
        &["storage management"],
        &["Databases", "Operating Systems"],
    ),
    (
        "Log Structured Storage",
        &["lsm trees", "log-structured merge trees"],
        &["Storage Systems"],
    ),
    ("B Trees", &["b-trees", "btree"], &["Indexing"]),
    ("Hash Indexes", &["hashing"], &["Indexing"]),
    ("Learned Indexes", &[], &["Indexing", "Machine Learning"]),
    (
        "Multidimensional Indexing",
        &["r-trees"],
        &["Indexing", "Spatial Databases"],
    ),
    ("Data Models", &[], &["Databases"]),
    ("Data Compression", &["compression"], &["Storage Systems"]),
    (
        "Recovery",
        &["crash recovery", "logging and recovery"],
        &["Transaction Processing"],
    ),
    (
        "Serializability",
        &["isolation levels"],
        &["Concurrency Control"],
    ),
    (
        "Multiversion Concurrency Control",
        &["mvcc"],
        &["Concurrency Control"],
    ),
    (
        "Optimistic Concurrency Control",
        &["occ"],
        &["Concurrency Control"],
    ),
    (
        "Distributed Transactions",
        &["two-phase commit", "2pc"],
        &["Transaction Processing", "Distributed Databases"],
    ),
    ("Polystores", &["multistore systems"], &["Data Integration"]),
    ("Scientific Databases", &["array databases"], &["Databases"]),
    (
        "Uncertain Data",
        &["probabilistic databases"],
        &["Databases"],
    ),
    (
        "Time Series Data",
        &["time series databases"],
        &["Databases"],
    ),
    (
        "Workflow Systems",
        &["scientific workflows"],
        &["Databases", "Distributed Systems"],
    ),
    (
        "Business Process Management",
        &["bpm", "process mining"],
        &["Workflow Systems"],
    ),
    // ---- semantic web subtree (paper's example lives here) --------------
    (
        "Semantic Web",
        &["web of data"],
        &["World Wide Web", "Databases"],
    ),
    (
        "RDF",
        &["resource description framework", "rdf data"],
        &["Semantic Web"],
    ),
    (
        "SPARQL",
        &["sparql query language"],
        &["Semantic Web", "Query Languages"],
    ),
    (
        "Linked Open Data",
        &["linked data", "lod"],
        &["Semantic Web"],
    ),
    (
        "Ontologies",
        &["ontology engineering"],
        &["Semantic Web", "Knowledge Representation"],
    ),
    ("OWL", &["web ontology language"], &["Ontologies"]),
    (
        "Knowledge Graphs",
        &["knowledge graph"],
        &["Semantic Web", "Graph Databases"],
    ),
    (
        "RDF Stores",
        &["triple stores", "triplestores"],
        &["RDF", "Storage Systems"],
    ),
    (
        "Ontology Matching",
        &["ontology alignment"],
        &["Ontologies", "Schema Matching"],
    ),
    (
        "Reasoning",
        &["inference", "description logics"],
        &["Ontologies", "Knowledge Representation"],
    ),
    ("SHACL", &["shapes constraint language"], &["RDF"]),
    ("RDF Schema", &["rdfs"], &["RDF"]),
    // ---- AI / ML subtree -------------------------------------------------
    (
        "Deep Learning",
        &["neural networks", "deep neural networks"],
        &["Machine Learning"],
    ),
    (
        "Convolutional Neural Networks",
        &["cnn", "cnns"],
        &["Deep Learning"],
    ),
    (
        "Recurrent Neural Networks",
        &["rnn", "lstm"],
        &["Deep Learning"],
    ),
    ("Transformers", &["attention models"], &["Deep Learning"]),
    ("Reinforcement Learning", &["rl"], &["Machine Learning"]),
    (
        "Supervised Learning",
        &["classification", "regression analysis"],
        &["Machine Learning"],
    ),
    ("Unsupervised Learning", &[], &["Machine Learning"]),
    (
        "Clustering",
        &["cluster analysis"],
        &["Unsupervised Learning", "Data Mining"],
    ),
    (
        "Dimensionality Reduction",
        &["feature selection"],
        &["Unsupervised Learning"],
    ),
    (
        "Support Vector Machines",
        &["svm", "svms"],
        &["Supervised Learning"],
    ),
    (
        "Decision Trees",
        &["random forests", "gradient boosting"],
        &["Supervised Learning"],
    ),
    (
        "Bayesian Methods",
        &["bayesian networks", "probabilistic graphical models"],
        &["Machine Learning"],
    ),
    (
        "Online Learning",
        &["incremental learning"],
        &["Machine Learning"],
    ),
    (
        "Transfer Learning",
        &["domain adaptation"],
        &["Machine Learning"],
    ),
    ("Active Learning", &[], &["Machine Learning"]),
    (
        "Federated Learning",
        &[],
        &["Machine Learning", "Distributed Systems"],
    ),
    (
        "AutoML",
        &["automated machine learning", "hyperparameter optimization"],
        &["Machine Learning"],
    ),
    (
        "Explainable AI",
        &["xai", "interpretability"],
        &["Machine Learning"],
    ),
    (
        "Recommender Systems",
        &["recommendation systems", "collaborative filtering"],
        &["Machine Learning", "Information Retrieval"],
    ),
    (
        "Anomaly Detection",
        &["outlier detection"],
        &["Data Mining"],
    ),
    (
        "Frequent Pattern Mining",
        &["association rules", "itemset mining"],
        &["Data Mining"],
    ),
    ("Graph Mining", &["network mining"], &["Data Mining"]),
    (
        "Social Network Analysis",
        &["social networks"],
        &["Graph Mining", "World Wide Web"],
    ),
    ("Community Detection", &[], &["Social Network Analysis"]),
    (
        "Link Prediction",
        &[],
        &["Social Network Analysis", "Machine Learning"],
    ),
    (
        "Text Mining",
        &["text analytics"],
        &["Data Mining", "Natural Language Processing"],
    ),
    ("Sentiment Analysis", &["opinion mining"], &["Text Mining"]),
    (
        "Topic Modeling",
        &["topic models", "lda", "latent dirichlet allocation"],
        &["Text Mining", "Machine Learning"],
    ),
    (
        "Information Extraction",
        &["ie"],
        &["Natural Language Processing", "Text Mining"],
    ),
    (
        "Named Entity Recognition",
        &["ner"],
        &["Information Extraction"],
    ),
    (
        "Entity Linking",
        &["entity disambiguation"],
        &["Information Extraction", "Knowledge Graphs"],
    ),
    ("Relation Extraction", &[], &["Information Extraction"]),
    (
        "Machine Translation",
        &["mt"],
        &["Natural Language Processing"],
    ),
    (
        "Question Answering",
        &["qa systems"],
        &["Natural Language Processing", "Information Retrieval"],
    ),
    (
        "Word Embeddings",
        &["word2vec", "distributed representations"],
        &["Natural Language Processing", "Deep Learning"],
    ),
    (
        "Language Models",
        &["language modeling"],
        &["Natural Language Processing"],
    ),
    (
        "Speech Recognition",
        &["asr"],
        &["Natural Language Processing"],
    ),
    (
        "Text Summarization",
        &["summarization"],
        &["Natural Language Processing"],
    ),
    (
        "Image Classification",
        &[],
        &["Computer Vision", "Supervised Learning"],
    ),
    ("Object Detection", &[], &["Computer Vision"]),
    ("Image Segmentation", &[], &["Computer Vision"]),
    ("Face Recognition", &[], &["Computer Vision"]),
    (
        "Planning",
        &["automated planning"],
        &["Artificial Intelligence"],
    ),
    (
        "Search Algorithms",
        &["heuristic search"],
        &["Artificial Intelligence"],
    ),
    (
        "Constraint Satisfaction",
        &["constraint programming"],
        &["Artificial Intelligence"],
    ),
    (
        "Multi Agent Systems",
        &["agents", "agent-based systems"],
        &["Artificial Intelligence"],
    ),
    (
        "Game Theory",
        &["mechanism design"],
        &["Artificial Intelligence", "Theory of Computation"],
    ),
    (
        "Evolutionary Computation",
        &["genetic algorithms"],
        &["Artificial Intelligence"],
    ),
    (
        "Fuzzy Logic",
        &["fuzzy systems"],
        &["Artificial Intelligence"],
    ),
    ("Expert Systems", &[], &["Knowledge Representation"]),
    // ---- IR subtree -------------------------------------------------------
    (
        "Web Search",
        &["search engines"],
        &["Information Retrieval", "World Wide Web"],
    ),
    (
        "Ranking",
        &["learning to rank", "ranking models"],
        &["Information Retrieval"],
    ),
    ("Relevance Feedback", &[], &["Information Retrieval"]),
    (
        "Query Expansion",
        &["query reformulation"],
        &["Information Retrieval"],
    ),
    (
        "Inverted Indexes",
        &["inverted files"],
        &["Information Retrieval", "Indexing"],
    ),
    (
        "TF IDF",
        &["tf-idf", "term weighting"],
        &["Information Retrieval"],
    ),
    (
        "Evaluation Metrics",
        &["ndcg", "precision and recall"],
        &["Information Retrieval"],
    ),
    (
        "Digital Libraries",
        &["scholarly data", "academic search"],
        &["Information Retrieval", "Scientometrics"],
    ),
    (
        "Citation Analysis",
        &["citation networks", "h-index"],
        &["Scientometrics"],
    ),
    (
        "Peer Review",
        &["scientific reviewing", "manuscript review"],
        &["Scientometrics"],
    ),
    (
        "Reviewer Assignment",
        &["reviewer recommendation", "paper-reviewer assignment"],
        &["Peer Review", "Recommender Systems"],
    ),
    (
        "Author Name Disambiguation",
        &["name disambiguation", "author disambiguation"],
        &["Digital Libraries", "Entity Resolution"],
    ),
    (
        "Conflict of Interest Detection",
        &["coi detection"],
        &["Peer Review"],
    ),
    (
        "Expert Finding",
        &["expertise retrieval", "expert search"],
        &["Information Retrieval", "Scientometrics"],
    ),
    (
        "Bibliographic Databases",
        &["dblp", "citation indexes"],
        &["Digital Libraries"],
    ),
    // ---- distributed systems subtree --------------------------------------
    (
        "Cloud Computing",
        &["cloud services"],
        &["Distributed Systems"],
    ),
    (
        "Serverless Computing",
        &["function as a service", "faas"],
        &["Cloud Computing"],
    ),
    (
        "Virtualization",
        &["virtual machines"],
        &["Cloud Computing", "Operating Systems"],
    ),
    (
        "Containers",
        &["containerization", "docker"],
        &["Virtualization"],
    ),
    (
        "Consensus Protocols",
        &["paxos", "raft"],
        &["Distributed Systems"],
    ),
    (
        "Replication",
        &["data replication"],
        &["Distributed Systems", "Databases"],
    ),
    (
        "Fault Tolerance",
        &["dependability"],
        &["Distributed Systems"],
    ),
    ("Peer to Peer Systems", &["p2p"], &["Distributed Systems"]),
    (
        "Blockchain",
        &["distributed ledger", "smart contracts"],
        &["Distributed Systems", "Security and Privacy"],
    ),
    (
        "Edge Computing",
        &["fog computing"],
        &["Cloud Computing", "Computer Networks"],
    ),
    ("Grid Computing", &[], &["Distributed Systems"]),
    ("Load Balancing", &[], &["Distributed Systems"]),
    (
        "Distributed File Systems",
        &["hdfs"],
        &["Distributed Systems", "Storage Systems"],
    ),
    (
        "Resource Management",
        &["scheduling", "cluster scheduling"],
        &["Distributed Systems", "Operating Systems"],
    ),
    (
        "Microservices",
        &["service-oriented architecture", "soa"],
        &["Distributed Systems", "Software Engineering"],
    ),
    // ---- networks subtree --------------------------------------------------
    ("Wireless Networks", &["wifi"], &["Computer Networks"]),
    (
        "Sensor Networks",
        &["wireless sensor networks", "wsn"],
        &["Wireless Networks", "Embedded Systems"],
    ),
    (
        "Internet of Things",
        &["iot"],
        &["Computer Networks", "Embedded Systems"],
    ),
    (
        "Software Defined Networking",
        &["sdn"],
        &["Computer Networks"],
    ),
    ("Network Protocols", &["tcp/ip"], &["Computer Networks"]),
    (
        "Network Measurement",
        &["traffic analysis"],
        &["Computer Networks"],
    ),
    (
        "Mobile Computing",
        &["mobile systems"],
        &["Computer Networks"],
    ),
    (
        "Content Delivery Networks",
        &["cdn"],
        &["Computer Networks", "World Wide Web"],
    ),
    // ---- security subtree --------------------------------------------------
    (
        "Cryptography",
        &["crypto"],
        &["Security and Privacy", "Theory of Computation"],
    ),
    (
        "Public Key Cryptography",
        &["rsa", "asymmetric cryptography"],
        &["Cryptography"],
    ),
    ("Homomorphic Encryption", &[], &["Cryptography"]),
    (
        "Authentication",
        &["access control"],
        &["Security and Privacy"],
    ),
    (
        "Intrusion Detection",
        &["ids"],
        &["Security and Privacy", "Anomaly Detection"],
    ),
    (
        "Malware Analysis",
        &["malware detection"],
        &["Security and Privacy"],
    ),
    (
        "Differential Privacy",
        &[],
        &["Security and Privacy", "Databases"],
    ),
    (
        "Data Anonymization",
        &["k-anonymity"],
        &["Security and Privacy", "Databases"],
    ),
    (
        "Web Security",
        &[],
        &["Security and Privacy", "World Wide Web"],
    ),
    (
        "Network Security",
        &["firewalls"],
        &["Security and Privacy", "Computer Networks"],
    ),
    ("Secure Multiparty Computation", &["mpc"], &["Cryptography"]),
    // ---- software engineering subtree --------------------------------------
    (
        "Software Testing",
        &["test generation", "unit testing"],
        &["Software Engineering"],
    ),
    (
        "Program Analysis",
        &["static analysis", "dynamic analysis"],
        &["Software Engineering", "Programming Languages"],
    ),
    (
        "Software Verification",
        &["formal verification"],
        &["Software Engineering", "Theory of Computation"],
    ),
    ("Model Checking", &[], &["Software Verification"]),
    (
        "Program Synthesis",
        &[],
        &["Programming Languages", "Artificial Intelligence"],
    ),
    ("Refactoring", &["code smells"], &["Software Engineering"]),
    (
        "Mining Software Repositories",
        &["msr"],
        &["Software Engineering", "Data Mining"],
    ),
    (
        "DevOps",
        &["continuous integration", "ci/cd"],
        &["Software Engineering"],
    ),
    ("Requirements Engineering", &[], &["Software Engineering"]),
    (
        "Software Architecture",
        &["design patterns"],
        &["Software Engineering"],
    ),
    (
        "Empirical Software Engineering",
        &[],
        &["Software Engineering"],
    ),
    (
        "Bug Detection",
        &["fault localization", "defect prediction"],
        &["Software Testing"],
    ),
    // ---- PL subtree ---------------------------------------------------------
    (
        "Compilers",
        &["compiler construction", "code generation"],
        &["Programming Languages"],
    ),
    (
        "Type Systems",
        &["type theory", "type inference"],
        &["Programming Languages"],
    ),
    (
        "Functional Programming",
        &["lambda calculus"],
        &["Programming Languages"],
    ),
    (
        "Concurrent Programming",
        &["parallel programming"],
        &["Programming Languages", "Parallel Computing"],
    ),
    (
        "Memory Management",
        &["garbage collection"],
        &["Programming Languages", "Operating Systems"],
    ),
    ("Just In Time Compilation", &["jit"], &["Compilers"]),
    (
        "Domain Specific Languages",
        &["dsl", "dsls"],
        &["Programming Languages"],
    ),
    // ---- theory subtree -----------------------------------------------------
    (
        "Algorithms",
        &["algorithm design"],
        &["Theory of Computation"],
    ),
    (
        "Computational Complexity",
        &["complexity theory", "np-completeness"],
        &["Theory of Computation"],
    ),
    ("Graph Algorithms", &["graph theory"], &["Algorithms"]),
    ("Approximation Algorithms", &[], &["Algorithms"]),
    (
        "Randomized Algorithms",
        &["probabilistic algorithms"],
        &["Algorithms"],
    ),
    (
        "Online Algorithms",
        &["competitive analysis"],
        &["Algorithms"],
    ),
    ("Data Structures", &[], &["Algorithms"]),
    (
        "Streaming Algorithms",
        &["sketching", "sublinear algorithms"],
        &["Algorithms", "Data Streams"],
    ),
    (
        "Optimization",
        &["mathematical optimization", "linear programming"],
        &["Theory of Computation"],
    ),
    (
        "Combinatorial Optimization",
        &["integer programming"],
        &["Optimization"],
    ),
    (
        "Convex Optimization",
        &["gradient descent"],
        &["Optimization", "Machine Learning"],
    ),
    (
        "Automata Theory",
        &["formal languages"],
        &["Theory of Computation"],
    ),
    (
        "Logic in Computer Science",
        &["computational logic", "satisfiability", "sat solving"],
        &["Theory of Computation"],
    ),
    (
        "Quantum Computing",
        &["quantum algorithms"],
        &["Theory of Computation", "Computer Architecture"],
    ),
    (
        "Coding Theory",
        &["error correcting codes"],
        &["Theory of Computation"],
    ),
    (
        "Computational Geometry",
        &[],
        &["Algorithms", "Computer Graphics"],
    ),
    // ---- HCI / graphics / misc ---------------------------------------------
    (
        "Information Visualization",
        &["data visualization", "visual analytics"],
        &["Human Computer Interaction", "Computer Graphics"],
    ),
    (
        "User Studies",
        &["usability", "user experience"],
        &["Human Computer Interaction"],
    ),
    (
        "Ubiquitous Computing",
        &["pervasive computing"],
        &["Human Computer Interaction", "Mobile Computing"],
    ),
    (
        "Accessibility",
        &["assistive technology"],
        &["Human Computer Interaction"],
    ),
    ("Rendering", &["ray tracing"], &["Computer Graphics"]),
    (
        "Geometric Modeling",
        &["3d modeling", "mesh processing"],
        &["Computer Graphics"],
    ),
    (
        "Animation",
        &["character animation"],
        &["Computer Graphics"],
    ),
    (
        "Virtual Reality",
        &["vr", "augmented reality", "ar"],
        &["Computer Graphics", "Human Computer Interaction"],
    ),
    (
        "GPU Computing",
        &["gpgpu", "cuda"],
        &["Parallel Computing", "Computer Architecture"],
    ),
    (
        "High Performance Computing",
        &["hpc", "supercomputing"],
        &["Parallel Computing"],
    ),
    (
        "Real Time Systems",
        &[],
        &["Embedded Systems", "Operating Systems"],
    ),
    ("Cyber Physical Systems", &["cps"], &["Embedded Systems"]),
    (
        "File Systems",
        &[],
        &["Operating Systems", "Storage Systems"],
    ),
    ("Kernel Design", &["microkernels"], &["Operating Systems"]),
    (
        "Energy Efficiency",
        &["power management", "green computing"],
        &["Computer Architecture", "Operating Systems"],
    ),
    (
        "Non Volatile Memory",
        &["nvm", "persistent memory"],
        &["Computer Architecture", "Storage Systems"],
    ),
    (
        "Hardware Accelerators",
        &["fpga", "asic"],
        &["Computer Architecture"],
    ),
    (
        "Processor Design",
        &["cpu microarchitecture", "branch prediction"],
        &["Computer Architecture"],
    ),
    (
        "Caching",
        &["cache management", "cache replacement"],
        &["Computer Architecture", "Operating Systems"],
    ),
    (
        "Genomics",
        &["sequence analysis", "genome assembly"],
        &["Bioinformatics"],
    ),
    (
        "Protein Structure Prediction",
        &["proteomics"],
        &["Bioinformatics"],
    ),
    (
        "Medical Informatics",
        &["health informatics", "clinical data"],
        &["Bioinformatics", "Databases"],
    ),
    (
        "Computational Neuroscience",
        &["brain modeling"],
        &["Bioinformatics", "Artificial Intelligence"],
    ),
    (
        "Geographic Information Systems",
        &["gis", "geospatial data"],
        &["Spatial Databases", "Information Retrieval"],
    ),
    (
        "Urban Computing",
        &["smart cities"],
        &["Data Mining", "Internet of Things"],
    ),
    (
        "E Learning",
        &["educational technology", "mooc"],
        &["Human Computer Interaction", "World Wide Web"],
    ),
    (
        "Computational Social Science",
        &["social computing"],
        &["Data Mining", "Social Network Analysis"],
    ),
    (
        "Fairness in Machine Learning",
        &["algorithmic fairness", "bias in ai"],
        &["Machine Learning", "Computational Social Science"],
    ),
    (
        "Adversarial Machine Learning",
        &["adversarial examples"],
        &["Machine Learning", "Security and Privacy"],
    ),
    (
        "Graph Neural Networks",
        &["gnn", "gnns"],
        &["Deep Learning", "Graph Mining"],
    ),
    (
        "Generative Models",
        &[
            "gans",
            "generative adversarial networks",
            "variational autoencoders",
        ],
        &["Deep Learning"],
    ),
    (
        "Few Shot Learning",
        &["meta-learning", "zero-shot learning"],
        &["Machine Learning"],
    ),
    (
        "Self Supervised Learning",
        &["contrastive learning"],
        &["Machine Learning"],
    ),
    ("Data Augmentation", &[], &["Machine Learning"]),
    (
        "Model Compression",
        &["knowledge distillation", "pruning"],
        &["Deep Learning"],
    ),
    (
        "Machine Learning Systems",
        &["ml systems", "mlops"],
        &["Machine Learning", "Distributed Systems"],
    ),
    (
        "Data Management for ML",
        &["ml data management", "feature stores"],
        &["Machine Learning Systems", "Databases"],
    ),
    (
        "Vector Databases",
        &["similarity search", "nearest neighbor search"],
        &["Databases", "Information Retrieval"],
    ),
];

/// Undirected `related_equivalent` pairs — near-synonymous or tightly
/// coupled topics, by label.
const RELATED: &[(&str, &str)] = &[
    // The paper's worked example: RDF expands to these three.
    ("RDF", "Semantic Web"),
    ("RDF", "Linked Open Data"),
    ("RDF", "SPARQL"),
    ("SPARQL", "Query Languages"),
    ("Linked Open Data", "Knowledge Graphs"),
    ("Ontologies", "Knowledge Representation"),
    ("Knowledge Graphs", "Ontologies"),
    ("Semantic Web", "Ontologies"),
    ("Big Data", "MapReduce"),
    ("Big Data", "Data Streams"),
    ("Cloud Computing", "Virtualization"),
    ("Data Mining", "Machine Learning"),
    ("Clustering", "Unsupervised Learning"),
    ("Deep Learning", "Machine Learning"),
    ("Text Mining", "Natural Language Processing"),
    ("Information Extraction", "Named Entity Recognition"),
    ("Entity Resolution", "Author Name Disambiguation"),
    ("Entity Linking", "Entity Resolution"),
    (
        "Recommender Systems",
        "Collaborative Filtering Alias Holder",
    ),
    ("Expert Finding", "Reviewer Assignment"),
    ("Peer Review", "Reviewer Assignment"),
    ("Citation Analysis", "Digital Libraries"),
    ("Inverted Indexes", "Web Search"),
    ("TF IDF", "Ranking"),
    ("Query Expansion", "Web Search"),
    ("Consensus Protocols", "Replication"),
    ("Fault Tolerance", "Replication"),
    ("Blockchain", "Consensus Protocols"),
    ("Distributed File Systems", "Storage Systems"),
    ("Stream Processing Alias Holder", "Complex Event Processing"),
    ("Data Warehousing", "Big Data"),
    ("Column Stores", "Data Warehousing"),
    ("In Memory Databases", "Column Stores"),
    ("Graph Databases", "Graph Mining"),
    ("Graph Neural Networks", "Knowledge Graphs"),
    ("Social Network Analysis", "Community Detection"),
    ("Topic Modeling", "Text Mining"),
    ("Word Embeddings", "Language Models"),
    ("Transformers", "Language Models"),
    ("Image Classification", "Object Detection"),
    ("Cryptography", "Network Security"),
    ("Differential Privacy", "Data Anonymization"),
    ("Intrusion Detection", "Network Security"),
    ("Program Analysis", "Bug Detection"),
    ("Software Verification", "Model Checking"),
    ("Compilers", "Program Analysis"),
    ("Concurrency Control", "Distributed Transactions"),
    ("Multiversion Concurrency Control", "Serializability"),
    ("Query Optimization", "Cardinality Estimation"),
    ("Learned Indexes", "B Trees"),
    ("Log Structured Storage", "Key Value Stores"),
    ("Vector Databases", "Word Embeddings"),
    ("GPU Computing", "High Performance Computing"),
    ("Hardware Accelerators", "GPU Computing"),
    ("Non Volatile Memory", "File Systems"),
    ("Internet of Things", "Sensor Networks"),
    ("Edge Computing", "Internet of Things"),
    ("Geographic Information Systems", "Spatial Databases"),
    ("Urban Computing", "Geographic Information Systems"),
    ("Medical Informatics", "Genomics"),
    ("Fairness in Machine Learning", "Explainable AI"),
    ("AutoML", "Hyperparameter Tuning Alias Holder"),
    ("Streaming Algorithms", "Data Streams"),
    ("Information Visualization", "User Studies"),
    ("Scientometrics", "Citation Analysis"),
    ("Conflict of Interest Detection", "Peer Review"),
    ("Question Answering", "Web Search"),
    ("Data Cleaning", "Entity Resolution"),
    ("Schema Matching", "Ontology Matching"),
    ("Provenance", "Workflow Systems"),
    ("Business Process Management", "Workflow Systems"),
];

/// Builds the curated ontology.
///
/// Infallible by construction: the tables above are validated by unit
/// tests, and any inconsistency introduced by a future edit fails those
/// tests rather than panicking in production code (unknown labels in the
/// `RELATED` table are skipped with the pair recorded in `skipped` —
/// exposed through [`curated_cs_ontology_report`]).
pub fn curated_cs_ontology() -> Ontology {
    curated_cs_ontology_report().0
}

/// Builds the curated ontology and reports `RELATED` pairs whose labels
/// did not resolve (used by tests to keep the tables consistent).
pub fn curated_cs_ontology_report() -> (Ontology, Vec<(String, String)>) {
    let mut b = OntologyBuilder::new();
    let mut ids = std::collections::HashMap::new();
    for (label, aliases, parents) in TOPICS {
        let id = b
            .add_topic(label, aliases)
            .unwrap_or_else(|e| panic!("curated topic table invalid at {label:?}: {e}"));
        ids.insert(*label, id);
        for p in *parents {
            let pid = *ids
                .get(p)
                .unwrap_or_else(|| panic!("parent {p:?} of {label:?} not yet defined"));
            b.add_super_topic(pid, id)
                .unwrap_or_else(|e| panic!("curated edge table invalid at {label:?}: {e}"));
        }
    }
    let mut skipped = Vec::new();
    for (a, bl) in RELATED {
        match (ids.get(a), ids.get(bl)) {
            (Some(&ia), Some(&ib)) => {
                b.add_related(ia, ib)
                    .unwrap_or_else(|e| panic!("related edge {a:?}-{bl:?} invalid: {e}"));
            }
            _ => skipped.push((a.to_string(), bl.to_string())),
        }
    }
    (b.build(), skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curated_ontology_builds() {
        let o = curated_cs_ontology();
        assert!(
            o.len() >= 200,
            "expected a substantial ontology, got {}",
            o.len()
        );
        let s = o.stats();
        assert_eq!(s.roots, 1, "single root expected");
        assert!(s.max_depth >= 4);
    }

    #[test]
    fn related_table_mostly_resolves() {
        // A handful of placeholder labels are deliberately absent; anything
        // else failing to resolve is a table bug.
        let (_, skipped) = curated_cs_ontology_report();
        for (a, b) in &skipped {
            assert!(
                a.contains("Alias Holder") || b.contains("Alias Holder"),
                "unexpected unresolved related pair: {a:?} - {b:?}"
            );
        }
        assert!(skipped.len() <= 3, "too many skipped pairs: {skipped:?}");
    }

    #[test]
    fn papers_example_topics_exist() {
        let o = curated_cs_ontology();
        for label in [
            "RDF",
            "Semantic Web",
            "Linked Open Data",
            "SPARQL",
            "Big Data",
        ] {
            assert!(o.resolve(label).is_some(), "missing topic {label}");
        }
    }

    #[test]
    fn aliases_resolve_to_same_topic() {
        let o = curated_cs_ontology();
        assert_eq!(
            o.resolve("rdf"),
            o.resolve("resource description framework")
        );
        assert_eq!(o.resolve("ml"), o.resolve("Machine Learning"));
        assert_eq!(o.resolve("kdd"), o.resolve("Data Mining"));
    }

    #[test]
    fn rdf_related_to_paper_expansion_targets() {
        let o = curated_cs_ontology();
        let rdf = o.resolve("RDF").unwrap();
        let rel: Vec<&str> = o.related(rdf).iter().map(|&t| o.label(t)).collect();
        assert!(rel.contains(&"Semantic Web"));
        assert!(rel.contains(&"Linked Open Data"));
        assert!(rel.contains(&"SPARQL"));
    }

    #[test]
    fn every_non_root_topic_reaches_the_root() {
        let o = curated_cs_ontology();
        let root = o.resolve("Computer Science").unwrap();
        for t in o.topics() {
            if t.id == root {
                continue;
            }
            assert!(
                o.ancestors(t.id).contains(&root),
                "topic {} does not reach root",
                t.label
            );
        }
    }
}
