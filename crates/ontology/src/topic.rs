//! Topic identifiers and topic records.

use std::fmt;

/// Dense identifier of a topic inside one [`crate::Ontology`].
///
/// Ids are assigned contiguously by [`crate::OntologyBuilder`] in insertion
/// order, so they double as indices into the ontology's internal tables.
/// A `TopicId` is only meaningful for the ontology that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopicId(pub(crate) u32);

impl TopicId {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TopicId` from a raw index.
    ///
    /// Intended for tests and for substrates that persist ids; passing an
    /// index that does not exist in the target ontology will surface as
    /// [`crate::OntologyError::UnknownTopic`] at use sites.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TopicId(index as u32)
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single research topic in the ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topic {
    /// Identifier within the owning ontology.
    pub id: TopicId,
    /// Canonical human-readable label, e.g. `"Semantic Web"`.
    pub label: String,
    /// Normalized form of `label` used for lookups (see
    /// [`crate::normalize_label`]).
    pub normalized: String,
    /// Alternative surface forms that should resolve to this topic,
    /// already normalized (e.g. `"resource description framework"` for
    /// `"RDF"`).
    pub aliases: Vec<String>,
}

impl Topic {
    /// True when `needle` (already normalized) matches the canonical label
    /// or any alias.
    pub fn matches_normalized(&self, needle: &str) -> bool {
        self.normalized == needle || self.aliases.iter().any(|a| a == needle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_id_roundtrips_through_index() {
        let id = TopicId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "t42");
    }

    #[test]
    fn topic_matches_label_and_aliases() {
        let t = Topic {
            id: TopicId(0),
            label: "RDF".into(),
            normalized: "rdf".into(),
            aliases: vec!["resource description framework".into()],
        };
        assert!(t.matches_normalized("rdf"));
        assert!(t.matches_normalized("resource description framework"));
        assert!(!t.matches_normalized("sparql"));
    }
}
