//! The immutable topic graph and its builder.

use std::collections::HashMap;

use crate::error::OntologyError;
use crate::normalize::normalize_label;
use crate::topic::{Topic, TopicId};

/// Builder for [`Ontology`].
///
/// Topics are registered first, then edges. `build` validates that the
/// `super_topic_of` relation is acyclic and precomputes the depth table
/// used by the similarity measure.
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    topics: Vec<Topic>,
    by_norm: HashMap<String, TopicId>,
    parents: Vec<Vec<TopicId>>,
    children: Vec<Vec<TopicId>>,
    related: Vec<Vec<TopicId>>,
}

impl OntologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a topic with the given canonical label and aliases.
    ///
    /// Returns the assigned [`TopicId`]. Fails if the normalized label (or
    /// a normalized alias) collides with an already-registered label.
    pub fn add_topic(&mut self, label: &str, aliases: &[&str]) -> Result<TopicId, OntologyError> {
        let normalized = normalize_label(label);
        if normalized.is_empty() {
            return Err(OntologyError::EmptyLabel);
        }
        if self.by_norm.contains_key(&normalized) {
            return Err(OntologyError::DuplicateLabel(normalized));
        }
        let mut norm_aliases = Vec::with_capacity(aliases.len());
        for a in aliases {
            let na = normalize_label(a);
            if na.is_empty() || na == normalized {
                continue;
            }
            if self.by_norm.contains_key(&na) {
                return Err(OntologyError::DuplicateLabel(na));
            }
            norm_aliases.push(na);
        }
        let id = TopicId(self.topics.len() as u32);
        self.by_norm.insert(normalized.clone(), id);
        for na in &norm_aliases {
            self.by_norm.insert(na.clone(), id);
        }
        self.topics.push(Topic {
            id,
            label: label.trim().to_string(),
            normalized,
            aliases: norm_aliases,
        });
        self.parents.push(Vec::new());
        self.children.push(Vec::new());
        self.related.push(Vec::new());
        Ok(id)
    }

    /// Records that `parent` is a super-topic of `child`
    /// (CSO's `superTopicOf`).
    pub fn add_super_topic(
        &mut self,
        parent: TopicId,
        child: TopicId,
    ) -> Result<(), OntologyError> {
        self.check_id(parent)?;
        self.check_id(child)?;
        if parent == child {
            return Err(OntologyError::SelfLoop(parent));
        }
        if self.reaches(child, parent) {
            return Err(OntologyError::CycleDetected { child, parent });
        }
        if !self.parents[child.index()].contains(&parent) {
            self.parents[child.index()].push(parent);
            self.children[parent.index()].push(child);
        }
        Ok(())
    }

    /// Records an undirected `relatedEquivalent` edge between two topics.
    pub fn add_related(&mut self, a: TopicId, b: TopicId) -> Result<(), OntologyError> {
        self.check_id(a)?;
        self.check_id(b)?;
        if a == b {
            return Err(OntologyError::SelfLoop(a));
        }
        if !self.related[a.index()].contains(&b) {
            self.related[a.index()].push(b);
            self.related[b.index()].push(a);
        }
        Ok(())
    }

    /// Finalizes the ontology, computing depth tables.
    pub fn build(self) -> Ontology {
        let n = self.topics.len();
        // Depth = 1 + length of the longest ancestor chain to a root.
        // Computed by memoized DFS; acyclicity is guaranteed by
        // `add_super_topic`, so the recursion terminates.
        let mut depth = vec![0u32; n];
        fn depth_of(i: usize, parents: &[Vec<TopicId>], depth: &mut [u32]) -> u32 {
            if depth[i] != 0 {
                return depth[i];
            }
            let d = 1 + parents[i]
                .iter()
                .map(|p| depth_of(p.index(), parents, depth))
                .max()
                .unwrap_or(0);
            depth[i] = d;
            d
        }
        for i in 0..n {
            depth_of(i, &self.parents, &mut depth);
        }
        Ontology {
            topics: self.topics,
            by_norm: self.by_norm,
            parents: self.parents,
            children: self.children,
            related: self.related,
            depth,
        }
    }

    fn check_id(&self, id: TopicId) -> Result<(), OntologyError> {
        if id.index() < self.topics.len() {
            Ok(())
        } else {
            Err(OntologyError::UnknownTopic(id))
        }
    }

    /// True when `to` is reachable from `from` following parent->child
    /// (super-topic) edges.
    fn reaches(&self, from: TopicId, to: TopicId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.topics.len()];
        while let Some(t) = stack.pop() {
            if t == to {
                return true;
            }
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            stack.extend(self.children[t.index()].iter().copied());
        }
        false
    }
}

/// Summary statistics about an ontology, used by experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OntologyStats {
    /// Number of topics.
    pub topics: usize,
    /// Number of directed `super_topic_of` edges.
    pub super_edges: usize,
    /// Number of undirected `related_equivalent` edges.
    pub related_edges: usize,
    /// Number of topics with no parents.
    pub roots: usize,
    /// Maximum depth of any topic (root = 1).
    pub max_depth: u32,
}

/// One topic's persistable fields (see [`Ontology::to_tables`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicRow {
    /// Canonical display label.
    pub label: String,
    /// Normalized form used for lookup.
    pub normalized: String,
    /// Normalized aliases.
    pub aliases: Vec<String>,
}

/// A verbatim dump of an ontology's internal tables, sufficient to
/// reconstruct it exactly — including adjacency-list ordering, which
/// downstream keyword expansion can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OntologyTables {
    /// Topic records in id order.
    pub topics: Vec<TopicRow>,
    /// Direct super-topics per topic, in stored order.
    pub parents: Vec<Vec<TopicId>>,
    /// Direct sub-topics per topic, in stored order.
    pub children: Vec<Vec<TopicId>>,
    /// `related_equivalent` neighbors per topic, in stored order.
    pub related: Vec<Vec<TopicId>>,
}

/// An immutable research-topic ontology.
///
/// Mirrors the structure of the Computer Science Ontology the paper uses:
/// a DAG of topics under `super_topic_of` plus undirected
/// `related_equivalent` edges between topics that denote near-synonymous
/// or tightly-coupled areas.
#[derive(Debug, Clone)]
pub struct Ontology {
    topics: Vec<Topic>,
    by_norm: HashMap<String, TopicId>,
    parents: Vec<Vec<TopicId>>,
    children: Vec<Vec<TopicId>>,
    related: Vec<Vec<TopicId>>,
    depth: Vec<u32>,
}

impl Ontology {
    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// True when the ontology has no topics.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Looks up a topic by free-text label or alias.
    pub fn resolve(&self, keyword: &str) -> Option<TopicId> {
        self.by_norm.get(&normalize_label(keyword)).copied()
    }

    /// Returns the topic record for `id`.
    pub fn topic(&self, id: TopicId) -> Result<&Topic, OntologyError> {
        self.topics
            .get(id.index())
            .ok_or(OntologyError::UnknownTopic(id))
    }

    /// Canonical label for `id`; panics only if `id` came from a different
    /// ontology (programmer error surfaced via `Result` in `topic`).
    pub fn label(&self, id: TopicId) -> &str {
        &self.topics[id.index()].label
    }

    /// Direct super-topics of `id`.
    pub fn parents(&self, id: TopicId) -> &[TopicId] {
        &self.parents[id.index()]
    }

    /// Direct sub-topics of `id`.
    pub fn children(&self, id: TopicId) -> &[TopicId] {
        &self.children[id.index()]
    }

    /// Topics linked to `id` by `related_equivalent`.
    pub fn related(&self, id: TopicId) -> &[TopicId] {
        &self.related[id.index()]
    }

    /// Depth of `id` in the super-topic DAG (roots have depth 1).
    pub fn depth(&self, id: TopicId) -> u32 {
        self.depth[id.index()]
    }

    /// Iterates over all topics.
    pub fn topics(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }

    /// All ancestors of `id` (transitive super-topics), excluding `id`.
    pub fn ancestors(&self, id: TopicId) -> Vec<TopicId> {
        let mut seen = vec![false; self.topics.len()];
        let mut out = Vec::new();
        let mut stack: Vec<TopicId> = self.parents[id.index()].clone();
        while let Some(t) = stack.pop() {
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            out.push(t);
            stack.extend(self.parents[t.index()].iter().copied());
        }
        out
    }

    /// Dumps the ontology's internal tables verbatim for persistence.
    ///
    /// Edge lists are exported in their stored order — ordering can be
    /// observable downstream (expansion output order follows adjacency
    /// order), so [`Ontology::from_tables`] restores it byte-for-byte
    /// rather than replaying builder calls.
    pub fn to_tables(&self) -> OntologyTables {
        OntologyTables {
            topics: self
                .topics
                .iter()
                .map(|t| TopicRow {
                    label: t.label.clone(),
                    normalized: t.normalized.clone(),
                    aliases: t.aliases.clone(),
                })
                .collect(),
            parents: self.parents.clone(),
            children: self.children.clone(),
            related: self.related.clone(),
        }
    }

    /// Reconstructs an ontology from tables produced by
    /// [`Ontology::to_tables`], preserving all adjacency ordering
    /// exactly. The lookup map and depth table are recomputed (both are
    /// deterministic functions of the tables). Fails on structurally
    /// inconsistent input: mismatched table lengths, out-of-range
    /// topic ids, or a cyclic parent relation.
    pub fn from_tables(tables: OntologyTables) -> Result<Self, OntologyError> {
        let n = tables.topics.len();
        if tables.parents.len() != n || tables.children.len() != n || tables.related.len() != n {
            return Err(OntologyError::InconsistentTables(format!(
                "{n} topics but {} parent, {} child, {} related rows",
                tables.parents.len(),
                tables.children.len(),
                tables.related.len()
            )));
        }
        let check = |rows: &[Vec<TopicId>], what: &str| -> Result<(), OntologyError> {
            for row in rows {
                for id in row {
                    if id.index() >= n {
                        return Err(OntologyError::InconsistentTables(format!(
                            "{what} edge references topic {} of {n}",
                            id.index()
                        )));
                    }
                }
            }
            Ok(())
        };
        check(&tables.parents, "parent")?;
        check(&tables.children, "child")?;
        check(&tables.related, "related")?;

        let mut by_norm = HashMap::new();
        let mut topics = Vec::with_capacity(n);
        for (i, row) in tables.topics.into_iter().enumerate() {
            let id = TopicId(i as u32);
            by_norm.insert(row.normalized.clone(), id);
            for a in &row.aliases {
                by_norm.insert(a.clone(), id);
            }
            topics.push(Topic {
                id,
                label: row.label,
                normalized: row.normalized,
                aliases: row.aliases,
            });
        }

        // Recompute depth iteratively (input is untrusted, so no
        // builder-guaranteed acyclicity: detect cycles instead of
        // recursing forever).
        let mut depth = vec![0u32; n];
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in progress, 2 = done
        for start in 0..n {
            if state[start] == 2 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            while let Some(&mut (i, ref mut next)) = stack.last_mut() {
                if *next == 0 {
                    if state[i] == 1 {
                        return Err(OntologyError::InconsistentTables(format!(
                            "parent relation contains a cycle through topic {i}"
                        )));
                    }
                    if state[i] == 2 {
                        stack.pop();
                        continue;
                    }
                    state[i] = 1;
                }
                if let Some(p) = tables.parents[i].get(*next) {
                    *next += 1;
                    let p = p.index();
                    if state[p] == 1 {
                        return Err(OntologyError::InconsistentTables(format!(
                            "parent relation contains a cycle through topic {p}"
                        )));
                    }
                    if state[p] != 2 {
                        stack.push((p, 0));
                    }
                } else {
                    depth[i] = 1 + tables.parents[i]
                        .iter()
                        .map(|p| depth[p.index()])
                        .max()
                        .unwrap_or(0);
                    state[i] = 2;
                    stack.pop();
                }
            }
        }

        Ok(Ontology {
            topics,
            by_norm,
            parents: tables.parents,
            children: tables.children,
            related: tables.related,
            depth,
        })
    }

    /// Summary statistics.
    pub fn stats(&self) -> OntologyStats {
        OntologyStats {
            topics: self.topics.len(),
            super_edges: self.parents.iter().map(Vec::len).sum(),
            related_edges: self.related.iter().map(Vec::len).sum::<usize>() / 2,
            roots: self.parents.iter().filter(|p| p.is_empty()).count(),
            max_depth: self.depth.iter().copied().max().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Ontology, TopicId, TopicId, TopicId) {
        let mut b = OntologyBuilder::new();
        let cs = b.add_topic("Computer Science", &[]).unwrap();
        let db = b.add_topic("Databases", &["data bases"]).unwrap();
        let sw = b.add_topic("Semantic Web", &[]).unwrap();
        b.add_super_topic(cs, db).unwrap();
        b.add_super_topic(cs, sw).unwrap();
        b.add_related(db, sw).unwrap();
        (b.build(), cs, db, sw)
    }

    #[test]
    fn resolves_labels_and_aliases_case_insensitively() {
        let (o, _, db, _) = tiny();
        assert_eq!(o.resolve("databases"), Some(db));
        assert_eq!(o.resolve("DATA-BASES"), Some(db));
        assert_eq!(o.resolve("nonexistent"), None);
    }

    #[test]
    fn depth_roots_are_one() {
        let (o, cs, db, _) = tiny();
        assert_eq!(o.depth(cs), 1);
        assert_eq!(o.depth(db), 2);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut b = OntologyBuilder::new();
        b.add_topic("RDF", &[]).unwrap();
        assert_eq!(
            b.add_topic("rdf", &[]),
            Err(OntologyError::DuplicateLabel("rdf".into()))
        );
    }

    #[test]
    fn alias_collision_rejected() {
        let mut b = OntologyBuilder::new();
        b.add_topic("RDF", &[]).unwrap();
        assert!(b.add_topic("Triples", &["RDF"]).is_err());
    }

    #[test]
    fn cycles_rejected() {
        let mut b = OntologyBuilder::new();
        let a = b.add_topic("a", &[]).unwrap();
        let c = b.add_topic("b", &[]).unwrap();
        let d = b.add_topic("c", &[]).unwrap();
        b.add_super_topic(a, c).unwrap();
        b.add_super_topic(c, d).unwrap();
        assert!(matches!(
            b.add_super_topic(d, a),
            Err(OntologyError::CycleDetected { .. })
        ));
    }

    #[test]
    fn self_loops_rejected() {
        let mut b = OntologyBuilder::new();
        let a = b.add_topic("a", &[]).unwrap();
        assert_eq!(b.add_super_topic(a, a), Err(OntologyError::SelfLoop(a)));
        assert_eq!(b.add_related(a, a), Err(OntologyError::SelfLoop(a)));
    }

    #[test]
    fn related_is_symmetric() {
        let (o, _, db, sw) = tiny();
        assert!(o.related(db).contains(&sw));
        assert!(o.related(sw).contains(&db));
    }

    #[test]
    fn ancestors_transitive() {
        let mut b = OntologyBuilder::new();
        let cs = b.add_topic("cs", &[]).unwrap();
        let db = b.add_topic("db", &[]).unwrap();
        let rdf = b.add_topic("rdf", &[]).unwrap();
        b.add_super_topic(cs, db).unwrap();
        b.add_super_topic(db, rdf).unwrap();
        let o = b.build();
        let anc = o.ancestors(rdf);
        assert!(anc.contains(&cs) && anc.contains(&db));
        assert_eq!(anc.len(), 2);
    }

    #[test]
    fn stats_counts_edges() {
        let (o, ..) = tiny();
        let s = o.stats();
        assert_eq!(s.topics, 3);
        assert_eq!(s.super_edges, 2);
        assert_eq!(s.related_edges, 1);
        assert_eq!(s.roots, 1);
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn tables_round_trip_exactly() {
        let (o, cs, db, sw) = tiny();
        let restored = Ontology::from_tables(o.to_tables()).unwrap();
        // Adjacency ordering, labels, aliases, lookup, and depth all
        // survive verbatim.
        for id in [cs, db, sw] {
            assert_eq!(restored.parents(id), o.parents(id));
            assert_eq!(restored.children(id), o.children(id));
            assert_eq!(restored.related(id), o.related(id));
            assert_eq!(restored.depth(id), o.depth(id));
            assert_eq!(
                restored.topic(id).unwrap().label,
                o.topic(id).unwrap().label
            );
        }
        assert_eq!(restored.resolve("DATA-BASES"), Some(db));
        assert_eq!(restored.to_tables(), o.to_tables());
    }

    #[test]
    fn from_tables_rejects_inconsistencies() {
        let (o, ..) = tiny();
        let mut bad = o.to_tables();
        bad.parents.pop();
        assert!(matches!(
            Ontology::from_tables(bad),
            Err(OntologyError::InconsistentTables(_))
        ));

        let mut bad = o.to_tables();
        bad.related[0].push(TopicId(99));
        assert!(matches!(
            Ontology::from_tables(bad),
            Err(OntologyError::InconsistentTables(_))
        ));

        // A cycle smuggled into the parent table must be detected, not
        // recursed into.
        let mut bad = o.to_tables();
        bad.parents[0].push(TopicId(1)); // cs <- db while db <- cs
        assert!(matches!(
            Ontology::from_tables(bad),
            Err(OntologyError::InconsistentTables(_))
        ));
    }

    #[test]
    fn curated_seed_round_trips() {
        let o = crate::seed::curated_cs_ontology();
        let restored = Ontology::from_tables(o.to_tables()).unwrap();
        assert_eq!(restored.to_tables(), o.to_tables());
        assert_eq!(restored.stats(), o.stats());
        for t in o.topics() {
            assert_eq!(restored.depth(t.id), o.depth(t.id), "{}", t.label);
        }
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = OntologyBuilder::new();
        let a = b.add_topic("a", &[]).unwrap();
        let c = b.add_topic("b", &[]).unwrap();
        b.add_super_topic(a, c).unwrap();
        b.add_super_topic(a, c).unwrap();
        b.add_related(a, c).unwrap();
        b.add_related(c, a).unwrap();
        let o = b.build();
        assert_eq!(o.children(a).len(), 1);
        assert_eq!(o.related(a).len(), 1);
    }
}
