//! Semantic similarity between topics.
//!
//! The paper requires every expanded keyword to carry a similarity score
//! `sc ∈ [0, 1]` relative to the original keyword (§2.1). We use a
//! Wu–Palmer-style measure over the super-topic DAG, blended with a fixed
//! bonus for `related_equivalent` neighbours, which CSO treats as
//! near-synonyms.

use std::collections::HashSet;

use crate::graph::Ontology;
use crate::topic::TopicId;

/// Score assigned to a direct `related_equivalent` neighbour.
pub(crate) const RELATED_SCORE: f64 = 0.9;

impl Ontology {
    /// Semantic similarity between two topics, in `[0, 1]`.
    ///
    /// * identical topics score `1.0`;
    /// * `related_equivalent` neighbours score at least
    ///   [`RELATED_SCORE`](0.9);
    /// * otherwise the Wu–Palmer measure
    ///   `2·depth(lcs) / (depth(a) + depth(b))` over the super-topic DAG,
    ///   where `lcs` is the deepest common ancestor (topics themselves
    ///   count as their own ancestors);
    /// * topics with no common ancestor score `0.0`.
    pub fn similarity(&self, a: TopicId, b: TopicId) -> f64 {
        if a == b {
            return 1.0;
        }
        let wp = self.wu_palmer(a, b);
        if self.related(a).contains(&b) {
            wp.max(RELATED_SCORE)
        } else {
            wp
        }
    }

    fn wu_palmer(&self, a: TopicId, b: TopicId) -> f64 {
        let mut anc_a: HashSet<TopicId> = self.ancestors(a).into_iter().collect();
        anc_a.insert(a);
        let mut anc_b: HashSet<TopicId> = self.ancestors(b).into_iter().collect();
        anc_b.insert(b);
        let lcs_depth = anc_a
            .intersection(&anc_b)
            .map(|t| self.depth(*t))
            .max()
            .unwrap_or(0);
        if lcs_depth == 0 {
            return 0.0;
        }
        let da = self.depth(a) as f64;
        let db = self.depth(b) as f64;
        (2.0 * lcs_depth as f64) / (da + db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OntologyBuilder;

    /// cs ── db ── rdf
    ///    └─ ai ── ml
    /// related: rdf <-> sparql (sparql under db)
    fn fixture() -> (Ontology, Vec<TopicId>) {
        let mut b = OntologyBuilder::new();
        let cs = b.add_topic("cs", &[]).unwrap();
        let db = b.add_topic("db", &[]).unwrap();
        let rdf = b.add_topic("rdf", &[]).unwrap();
        let ai = b.add_topic("ai", &[]).unwrap();
        let ml = b.add_topic("ml", &[]).unwrap();
        let sparql = b.add_topic("sparql", &[]).unwrap();
        b.add_super_topic(cs, db).unwrap();
        b.add_super_topic(db, rdf).unwrap();
        b.add_super_topic(cs, ai).unwrap();
        b.add_super_topic(ai, ml).unwrap();
        b.add_super_topic(db, sparql).unwrap();
        b.add_related(rdf, sparql).unwrap();
        (b.build(), vec![cs, db, rdf, ai, ml, sparql])
    }

    #[test]
    fn identical_topics_score_one() {
        let (o, ids) = fixture();
        assert_eq!(o.similarity(ids[2], ids[2]), 1.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let (o, ids) = fixture();
        for &a in &ids {
            for &b in &ids {
                assert!((o.similarity(a, b) - o.similarity(b, a)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn related_neighbours_score_high() {
        let (o, ids) = fixture();
        let (rdf, sparql) = (ids[2], ids[5]);
        assert!(o.similarity(rdf, sparql) >= 0.9);
    }

    #[test]
    fn siblings_beat_cousins() {
        let (o, ids) = fixture();
        let (db, rdf, ml) = (ids[1], ids[2], ids[4]);
        // rdf–db (parent/child) > rdf–ml (only common ancestor is root).
        assert!(o.similarity(rdf, db) > o.similarity(rdf, ml));
    }

    #[test]
    fn scores_bounded() {
        let (o, ids) = fixture();
        for &a in &ids {
            for &b in &ids {
                let s = o.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
            }
        }
    }

    #[test]
    fn disconnected_topics_score_zero() {
        let mut b = OntologyBuilder::new();
        let a = b.add_topic("a", &[]).unwrap();
        let c = b.add_topic("b", &[]).unwrap();
        let o = b.build();
        assert_eq!(o.similarity(a, c), 0.0);
    }

    #[test]
    fn parent_child_similarity_uses_parent_depth() {
        let (o, ids) = fixture();
        let (cs, db) = (ids[0], ids[1]);
        // lcs = cs (depth 1), depths 1 and 2 => 2*1/(1+2).
        assert!((o.similarity(cs, db) - 2.0 / 3.0).abs() < 1e-12);
    }
}
