//! Deterministic synthetic-ontology generator.
//!
//! The scalability experiments (E7) need ontologies far larger than the
//! curated seed. This generator produces random-but-reproducible DAGs with
//! CSO-like shape parameters: a configurable branching factor, depth, and
//! density of `related_equivalent` edges.
//!
//! The generator carries its own tiny SplitMix64 PRNG instead of depending
//! on `rand`, keeping this substrate crate dependency-free.

use crate::graph::{Ontology, OntologyBuilder};
use crate::topic::TopicId;

/// SplitMix64 — small, fast, and statistically adequate for synthetic
/// data generation (not for cryptography).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub(crate) fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Parameters of the synthetic ontology.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Total number of topics (including the root).
    pub topics: usize,
    /// Average number of children per internal topic; controls depth.
    pub branching: usize,
    /// Fraction of topics that receive one extra (second) parent,
    /// making the graph a DAG rather than a tree. In `[0, 1]`.
    pub multi_parent_rate: f64,
    /// Number of `related_equivalent` edges as a fraction of topic count.
    pub related_rate: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            topics: 1000,
            branching: 8,
            multi_parent_rate: 0.15,
            related_rate: 0.3,
            seed: 0x00C5_0C50,
        }
    }
}

/// Generates synthetic ontologies.
#[derive(Debug, Clone)]
pub struct OntologyGenerator {
    config: GeneratorConfig,
}

impl OntologyGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// Generates the ontology. Deterministic for a fixed configuration.
    pub fn generate(&self) -> Ontology {
        let cfg = &self.config;
        let n = cfg.topics.max(1);
        let mut rng = SplitMix64::new(cfg.seed);
        let mut b = OntologyBuilder::new();
        let mut ids: Vec<TopicId> = Vec::with_capacity(n);
        ids.push(
            b.add_topic("synthetic topic 0", &[])
                .expect("root label is valid"),
        );
        for i in 1..n {
            let label = format!("synthetic topic {i}");
            let id = b.add_topic(&label, &[]).expect("generated labels unique");
            // Attach to a parent chosen among earlier topics, biased toward
            // recent ones to produce a branching-factor-controlled depth:
            // picking uniformly from the last `branching` eligible slots
            // approximates a b-ary tree.
            let window = cfg.branching.max(1);
            let lo = i.saturating_sub(window * 4);
            let parent = ids[lo + rng.below(i - lo)];
            b.add_super_topic(parent, id)
                .expect("parent precedes child");
            // Occasional second parent (edges always point old -> new, so
            // no cycle is possible).
            if i > 2 && rng.next_u64() as f64 / u64::MAX as f64 <= cfg.multi_parent_rate {
                let second = ids[rng.below(i)];
                if second != parent {
                    b.add_super_topic(second, id)
                        .expect("old -> new is acyclic");
                }
            }
            ids.push(id);
        }
        let related_edges = (n as f64 * cfg.related_rate) as usize;
        for _ in 0..related_edges {
            let a = ids[rng.below(n)];
            let c = ids[rng.below(n)];
            if a != c {
                b.add_related(a, c).expect("ids are valid");
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = OntologyGenerator::new(GeneratorConfig::default());
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.len(), b.len());
        let sa = a.stats();
        let sb = b.stats();
        assert_eq!(sa.super_edges, sb.super_edges);
        assert_eq!(sa.related_edges, sb.related_edges);
    }

    #[test]
    fn respects_topic_count() {
        let g = OntologyGenerator::new(GeneratorConfig {
            topics: 500,
            ..Default::default()
        });
        assert_eq!(g.generate().len(), 500);
    }

    #[test]
    fn produces_single_root_dag() {
        let o = OntologyGenerator::new(GeneratorConfig {
            topics: 300,
            ..Default::default()
        })
        .generate();
        assert_eq!(o.stats().roots, 1);
        assert!(o.stats().max_depth > 1);
    }

    #[test]
    fn all_labels_resolve() {
        let o = OntologyGenerator::new(GeneratorConfig {
            topics: 50,
            ..Default::default()
        })
        .generate();
        for i in 0..50 {
            assert!(o.resolve(&format!("synthetic topic {i}")).is_some());
        }
    }

    #[test]
    fn tiny_ontology_works() {
        let o = OntologyGenerator::new(GeneratorConfig {
            topics: 1,
            ..Default::default()
        })
        .generate();
        assert_eq!(o.len(), 1);
        assert_eq!(o.stats().max_depth, 1);
    }

    #[test]
    fn splitmix_bounded_sampling() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }
}
