//! Semantic keyword expansion (§2.1 of the paper).
//!
//! Given a manuscript keyword, the expander resolves it to an ontology
//! topic and walks outward over super-topic, sub-topic and
//! `related_equivalent` edges, assigning each reached topic a similarity
//! score `sc ∈ [0, 1]` relative to the original keyword. Candidates below
//! a configurable floor are discarded; results are returned best-first.

use std::collections::{BinaryHeap, HashMap};

use crate::error::OntologyError;
use crate::graph::Ontology;
use crate::topic::TopicId;

/// One expanded keyword: a topic plus its similarity to the original.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedKeyword {
    /// The reached topic.
    pub topic: TopicId,
    /// Canonical label of the reached topic.
    pub label: String,
    /// Similarity score in `[0, 1]` relative to the original keyword.
    /// The original keyword itself is included with score `1.0`.
    pub score: f64,
    /// Number of ontology edges traversed from the original keyword.
    pub hops: u32,
}

/// Configuration for [`KeywordExpander`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionConfig {
    /// Maximum number of edges to traverse from the seed topic.
    pub max_hops: u32,
    /// Minimum similarity score for an expanded keyword to be kept.
    pub min_score: f64,
    /// Maximum number of expanded keywords returned per input keyword
    /// (the seed itself does not count against the limit).
    pub max_results: usize,
    /// Whether to traverse downward into sub-topics.
    pub include_descendants: bool,
    /// Whether to traverse upward into super-topics.
    pub include_ancestors: bool,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        Self {
            max_hops: 2,
            min_score: 0.5,
            max_results: 25,
            include_descendants: true,
            include_ancestors: true,
        }
    }
}

/// Expands free-text keywords into scored sets of related topics.
#[derive(Debug, Clone)]
pub struct KeywordExpander<'a> {
    ontology: &'a Ontology,
    config: ExpansionConfig,
}

/// Max-heap entry ordered by score (then by topic id for determinism).
#[derive(PartialEq)]
struct Frontier {
    score: f64,
    hops: u32,
    topic: TopicId,
}

impl Eq for Frontier {}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.topic.cmp(&self.topic))
    }
}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> KeywordExpander<'a> {
    /// Creates an expander over `ontology` with the given configuration.
    pub fn new(ontology: &'a Ontology, config: ExpansionConfig) -> Self {
        Self { ontology, config }
    }

    /// Creates an expander with [`ExpansionConfig::default`].
    pub fn with_defaults(ontology: &'a Ontology) -> Self {
        Self::new(ontology, ExpansionConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &ExpansionConfig {
        &self.config
    }

    /// Expands a single keyword.
    ///
    /// The result always starts with the seed topic itself at score `1.0`,
    /// followed by expanded topics sorted by descending score (ties broken
    /// by label). Fails with [`OntologyError::UnknownKeyword`] when the
    /// keyword resolves to no topic.
    pub fn expand(&self, keyword: &str) -> Result<Vec<ExpandedKeyword>, OntologyError> {
        let seed = self
            .ontology
            .resolve(keyword)
            .ok_or_else(|| OntologyError::UnknownKeyword(keyword.to_string()))?;
        Ok(self.expand_topic(seed))
    }

    /// Expands a keyword that is already resolved to a topic.
    pub fn expand_topic(&self, seed: TopicId) -> Vec<ExpandedKeyword> {
        // Best-first traversal: visit highest-similarity frontier entries
        // first so each topic is finalized at its best achievable score.
        let mut best: HashMap<TopicId, (f64, u32)> = HashMap::new();
        let mut heap = BinaryHeap::new();
        heap.push(Frontier {
            score: 1.0,
            hops: 0,
            topic: seed,
        });
        best.insert(seed, (1.0, 0));
        let mut settled: Vec<(TopicId, f64, u32)> = Vec::new();
        while let Some(Frontier { score, hops, topic }) = heap.pop() {
            match best.get(&topic) {
                Some(&(s, h)) if s > score || (s == score && h < hops) => continue,
                _ => {}
            }
            settled.push((topic, score, hops));
            if hops >= self.config.max_hops {
                continue;
            }
            for next in self.neighbours(topic) {
                // Score each reached topic directly against the *seed*, so
                // `sc` is always "similarity to the original keyword", not
                // a product of per-hop decays.
                let s = self.ontology.similarity(seed, next);
                if s < self.config.min_score {
                    continue;
                }
                let candidate = (s, hops + 1);
                let improved = match best.get(&next) {
                    None => true,
                    Some(&(bs, bh)) => s > bs || (s == bs && hops + 1 < bh),
                };
                if improved {
                    best.insert(next, candidate);
                    heap.push(Frontier {
                        score: s,
                        hops: hops + 1,
                        topic: next,
                    });
                }
            }
        }
        // Deduplicate (a topic may settle more than once if re-pushed at
        // equal score) keeping the first (= best) occurrence.
        let mut seen: HashMap<TopicId, ()> = HashMap::new();
        let mut out: Vec<ExpandedKeyword> = Vec::new();
        for (topic, score, hops) in settled {
            if seen.insert(topic, ()).is_some() {
                continue;
            }
            out.push(ExpandedKeyword {
                topic,
                label: self.ontology.label(topic).to_string(),
                score,
                hops,
            });
        }
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.label.cmp(&b.label))
        });
        out.truncate(self.config.max_results.saturating_add(1));
        out
    }

    /// Expands every keyword of a manuscript, merging duplicates at their
    /// maximum score. Unknown keywords are returned in the second element
    /// rather than failing the whole expansion — the paper's prototype
    /// likewise simply finds no candidates for unknown keywords.
    pub fn expand_all(&self, keywords: &[String]) -> (Vec<ExpandedKeyword>, Vec<String>) {
        let mut merged: HashMap<TopicId, ExpandedKeyword> = HashMap::new();
        let mut unknown = Vec::new();
        for kw in keywords {
            match self.expand(kw) {
                Ok(exps) => {
                    for e in exps {
                        merged
                            .entry(e.topic)
                            .and_modify(|cur| {
                                if e.score > cur.score {
                                    *cur = e.clone();
                                }
                            })
                            .or_insert(e);
                    }
                }
                Err(_) => unknown.push(kw.clone()),
            }
        }
        let mut out: Vec<ExpandedKeyword> = merged.into_values().collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.label.cmp(&b.label))
        });
        (out, unknown)
    }

    fn neighbours(&self, t: TopicId) -> Vec<TopicId> {
        let mut out: Vec<TopicId> = self.ontology.related(t).to_vec();
        if self.config.include_ancestors {
            out.extend_from_slice(self.ontology.parents(t));
        }
        if self.config.include_descendants {
            out.extend_from_slice(self.ontology.children(t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::OntologyBuilder;
    use crate::seed::curated_cs_ontology;

    fn fixture() -> Ontology {
        let mut b = OntologyBuilder::new();
        let cs = b.add_topic("cs", &[]).unwrap();
        let db = b.add_topic("db", &[]).unwrap();
        let rdf = b.add_topic("rdf", &[]).unwrap();
        let sparql = b.add_topic("sparql", &[]).unwrap();
        let ml = b.add_topic("ml", &[]).unwrap();
        b.add_super_topic(cs, db).unwrap();
        b.add_super_topic(db, rdf).unwrap();
        b.add_super_topic(db, sparql).unwrap();
        b.add_super_topic(cs, ml).unwrap();
        b.add_related(rdf, sparql).unwrap();
        b.build()
    }

    #[test]
    fn seed_comes_first_at_score_one() {
        let o = fixture();
        let ex = KeywordExpander::with_defaults(&o).expand("rdf").unwrap();
        assert_eq!(ex[0].label, "rdf");
        assert_eq!(ex[0].score, 1.0);
        assert_eq!(ex[0].hops, 0);
    }

    #[test]
    fn scores_sorted_descending_and_bounded() {
        let o = fixture();
        let ex = KeywordExpander::with_defaults(&o).expand("rdf").unwrap();
        for w in ex.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for e in &ex {
            assert!((0.0..=1.0).contains(&e.score));
        }
    }

    #[test]
    fn min_score_filters() {
        let o = fixture();
        let cfg = ExpansionConfig {
            min_score: 0.95,
            ..Default::default()
        };
        let ex = KeywordExpander::new(&o, cfg).expand("rdf").unwrap();
        // Only the seed and its related_equivalent partner could pass if
        // >= .95; related scores 0.9 so only the seed remains.
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn unknown_keyword_errors() {
        let o = fixture();
        assert!(matches!(
            KeywordExpander::with_defaults(&o).expand("quantum basket weaving"),
            Err(OntologyError::UnknownKeyword(_))
        ));
    }

    #[test]
    fn max_hops_zero_returns_only_seed() {
        let o = fixture();
        let cfg = ExpansionConfig {
            max_hops: 0,
            ..Default::default()
        };
        let ex = KeywordExpander::new(&o, cfg).expand("rdf").unwrap();
        assert_eq!(ex.len(), 1);
    }

    #[test]
    fn expand_all_merges_and_reports_unknown() {
        let o = fixture();
        let exp = KeywordExpander::with_defaults(&o);
        let (merged, unknown) = exp.expand_all(&[
            "rdf".to_string(),
            "sparql".to_string(),
            "underwater basket weaving".to_string(),
        ]);
        assert_eq!(unknown, vec!["underwater basket weaving".to_string()]);
        // Both seeds appear at score 1.0.
        let top: Vec<&str> = merged
            .iter()
            .filter(|e| e.score == 1.0)
            .map(|e| e.label.as_str())
            .collect();
        assert!(top.contains(&"rdf") && top.contains(&"sparql"));
        // No topic appears twice.
        let mut topics: Vec<_> = merged.iter().map(|e| e.topic).collect();
        topics.sort();
        topics.dedup();
        assert_eq!(topics.len(), merged.len());
    }

    #[test]
    fn paper_example_rdf_expands_to_semantic_web_family() {
        // §2.1: "RDF" must expand to "Semantic Web", "Linked Open Data"
        // and "SPARQL" among its results.
        let o = curated_cs_ontology();
        let ex = KeywordExpander::with_defaults(&o).expand("RDF").unwrap();
        let labels: Vec<&str> = ex.iter().map(|e| e.label.as_str()).collect();
        assert!(labels.contains(&"Semantic Web"), "got {labels:?}");
        assert!(labels.contains(&"Linked Open Data"), "got {labels:?}");
        assert!(labels.contains(&"SPARQL"), "got {labels:?}");
        for e in &ex {
            assert!((0.0..=1.0).contains(&e.score));
        }
    }

    #[test]
    fn max_results_truncates() {
        let o = curated_cs_ontology();
        let cfg = ExpansionConfig {
            max_results: 3,
            min_score: 0.0,
            ..Default::default()
        };
        let ex = KeywordExpander::new(&o, cfg).expand("RDF").unwrap();
        assert!(ex.len() <= 4); // seed + 3
    }
}
