//! Error type for ontology construction and queries.

use std::fmt;

use crate::TopicId;

/// Errors produced while building or querying an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// Two topics were registered with the same normalized label.
    DuplicateLabel(String),
    /// An edge referenced a topic id that was never registered.
    UnknownTopic(TopicId),
    /// A keyword could not be resolved to any topic.
    UnknownKeyword(String),
    /// Adding a `super_topic_of` edge would create a cycle.
    CycleDetected {
        /// Child endpoint of the offending edge.
        child: TopicId,
        /// Parent endpoint of the offending edge.
        parent: TopicId,
    },
    /// A topic was registered with an empty label.
    EmptyLabel,
    /// A self-loop edge was requested.
    SelfLoop(TopicId),
    /// Persisted ontology tables were structurally inconsistent
    /// (mismatched lengths, out-of-range ids, or a cyclic hierarchy).
    InconsistentTables(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::DuplicateLabel(l) => {
                write!(f, "duplicate topic label after normalization: {l:?}")
            }
            OntologyError::UnknownTopic(id) => write!(f, "unknown topic id {id}"),
            OntologyError::UnknownKeyword(k) => {
                write!(f, "keyword {k:?} does not resolve to any ontology topic")
            }
            OntologyError::CycleDetected { child, parent } => write!(
                f,
                "edge {parent} -> {child} would create a cycle in super-topic hierarchy"
            ),
            OntologyError::EmptyLabel => write!(f, "topic label must be non-empty"),
            OntologyError::SelfLoop(id) => write!(f, "self-loop edge on topic {id}"),
            OntologyError::InconsistentTables(detail) => {
                write!(f, "persisted ontology tables are inconsistent: {detail}")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readably() {
        let e = OntologyError::DuplicateLabel("rdf".into());
        assert!(e.to_string().contains("rdf"));
        let e = OntologyError::CycleDetected {
            child: TopicId(1),
            parent: TopicId(2),
        };
        assert!(e.to_string().contains("cycle"));
    }
}
