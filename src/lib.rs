//! # MINARET — a recommendation framework for scientific reviewers
//!
//! A from-scratch Rust reproduction of *MINARET: A Recommendation
//! Framework for Scientific Reviewers* (Moawad, Maher, Awad, Sakr —
//! EDBT 2019). Given a manuscript's details — keywords, author list with
//! affiliations, target journal — and an editor's configuration, the
//! framework:
//!
//! 1. verifies author identities and extracts their track records,
//!    semantically expands the keywords against a CS topic ontology, and
//!    retrieves candidate reviewers from six (simulated) scholarly
//!    sources;
//! 2. filters candidates with conflicts of interest (co-authorship,
//!    shared affiliations at university or country level), insufficient
//!    keyword-matching scores, or out-of-range expertise;
//! 3. ranks the survivors by a weighted sum of topic coverage,
//!    scientific impact, recency, review experience, and familiarity
//!    with the target outlet.
//!
//! ## Quickstart
//!
//! ```
//! use minaret::prelude::*;
//! use std::sync::Arc;
//!
//! // A seeded synthetic scholarly world stands in for the live web.
//! let world = Arc::new(WorldGenerator::new(WorldConfig::sized(400)).generate());
//! let mut registry = SourceRegistry::new(RegistryConfig::default());
//! for spec in SourceSpec::all_defaults() {
//!     registry.register(Arc::new(SimulatedSource::new(spec, world.clone())));
//! }
//! let minaret = Minaret::new(
//!     Arc::new(registry),
//!     Arc::new(minaret::ontology::seed::curated_cs_ontology()),
//!     EditorConfig::default(),
//! );
//!
//! // Keywords drawn from a real scholar's interests, as an editor would.
//! let lead = &world.scholars()[0];
//! let manuscript = ManuscriptDetails {
//!     title: "Scalable SPARQL over RDF stores".into(),
//!     keywords: lead
//!         .interests
//!         .iter()
//!         .map(|&t| world.ontology.label(t).to_string())
//!         .collect(),
//!     authors: vec![AuthorInput::named(lead.full_name())],
//!     target_venue: world.venues()[0].name.clone(),
//! };
//! let report = minaret.recommend(&manuscript).unwrap();
//! println!("{}", report.render_table());
//! ```
//!
//! The individual subsystems are re-exported as modules: [`ontology`],
//! [`synth`], [`scholarly`], [`disambig`], [`index`], [`core`],
//! [`assign`], [`baselines`], [`eval`], [`json`], [`http`], [`store`],
//! [`concurrent`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use minaret_assign as assign;
pub use minaret_baselines as baselines;
pub use minaret_concurrent as concurrent;
pub use minaret_core as core;
pub use minaret_disambig as disambig;
pub use minaret_eval as eval;
pub use minaret_http as http;
pub use minaret_index as index;
pub use minaret_json as json;
pub use minaret_ontology as ontology;
pub use minaret_scholarly as scholarly;
pub use minaret_store as store;
pub use minaret_synth as synth;

/// The most common imports in one place.
pub mod prelude {
    pub use minaret_assign::{Assigner, AssignmentSpec, BatchAssignment};
    pub use minaret_core::{
        AffiliationMatchLevel, AuthorInput, CoiConfig, EditorConfig, ExpertiseConstraints,
        ImpactMetric, ManuscriptDetails, Minaret, RankingWeights, Recommendation,
        RecommendationReport,
    };
    pub use minaret_disambig::{AuthorQuery, IdentityResolver, ResolutionPolicy};
    pub use minaret_ontology::{ExpansionConfig, KeywordExpander, Ontology};
    pub use minaret_scholarly::{
        BackoffConfig, BreakerConfig, BreakerState, CachingSource, Clock, FaultSchedule,
        RegistryConfig, ResilienceConfig, ScholarSource, SimulatedClock, SimulatedSource,
        SourceKind, SourceRegistry, SourceSpec,
    };
    pub use minaret_synth::{ScholarId, World, WorldConfig, WorldGenerator};
}
